package lp

import "math"

// This file holds the linear-algebra substrate of the revised simplex solver
// (revised.go): a basis factorization that exploits the structure of
// cutting-plane masters, and a product-form eta file for cheap basis updates
// between refactorizations.
//
// The basis B of a master LP is overwhelmingly made of logical columns
// (slacks of occupation and cut rows), each a signed unit vector ±e_r. Only
// the structural basic columns — edge rates with nonzero level, the
// throughput variable — need real elimination. The factorization therefore
// permutes B into
//
//	B = [ S  F ]     S: signed identity over the singleton-covered rows,
//	    [ 0  G ]     G: the sparse "core" over the remaining rows/columns,
//
// and keeps a sparse LU of G only (k×k with k = #structural basics, typically
// far smaller than the row count m). The core itself is sparse — an edge
// column touches its two occupation rows plus the tight cuts containing the
// edge — so factorization and the FTRAN/BTRAN triangular solves run in time
// near the factor nonzero count, not the dense k³/k².

// Tolerances of the factorization machinery.
const (
	// luTiny is the pivot magnitude below which the LU of the core declares
	// the basis numerically singular.
	luTiny = 1e-11
	// etaDropTol drops eta entries too small to matter; keeping them would
	// only grow the eta file and spread roundoff.
	etaDropTol = 1e-12
	// etaLimit is the default update-count refactorization trigger: after
	// this many eta updates the factorization is rebuilt from the current
	// basis, both to bound the FTRAN/BTRAN cost of the eta chain and to
	// reset accumulated roundoff. Options.RefactorInterval overrides it.
	etaLimit = 64
	// pivotGrowthTol is the relative-instability refactorization trigger: a
	// transformed pivot element smaller than this fraction of the largest
	// entry of the transformed column signals that the eta chain has gone
	// numerically stale, so the solver refactorizes and recomputes before
	// committing the pivot.
	pivotGrowthTol = 1e-8
)

// sparseLU is a sparse LU factorization of the core: P·G·Q = L·U with row
// permutation P chosen by partial pivoting and column order Q fixed up front
// (columns sorted by nonzero count, cheapest first). It is computed
// left-looking in the style of Gilbert–Peierls: each column of G is solved
// against the L columns already produced — a sparse triangular solve whose
// nonzero pattern comes from a depth-first reachability pass over the L
// structure — and then pivoted on its largest remaining entry, so the work
// per column is proportional to the entries it actually touches. All slabs
// are reused across refactorizations.
type sparseLU struct {
	k int
	// L is unit lower triangular, stored by pivot-order column; row indices
	// are core-row slots (rows that become pivots of later steps), the unit
	// diagonal is implicit.
	lp []int32
	li []int32
	lx []float64
	// U is upper triangular, stored by pivot-order column; row indices are
	// pivot steps of earlier columns, the diagonal lives in ud.
	up []int32
	ui []int32
	ux []float64
	ud []float64

	rowOf   []int32 // core-row slot → pivot step (−1 until pivoted)
	stepRow []int32 // pivot step → core-row slot
	colOf   []int32 // pivot step → core-col slot (the elimination order)

	w     []float64 // dense accumulator over core-row slots
	mark  []int32   // per-column DFS visitation epochs
	stack []int32   // DFS node stack
	estk  []int32   // DFS edge cursors
	patt  []int32   // column pattern in finish (post-) order
	pvec  []float64 // solve-time permutation scratch
	cnt   []int32   // counting-sort buckets for the column ordering
}

// init sizes the per-step slabs and resets the factor for k columns.
func (f *sparseLU) init(k int) {
	f.k = k
	if cap(f.rowOf) < k {
		f.rowOf = make([]int32, k)
		f.stepRow = make([]int32, k)
		f.colOf = make([]int32, k)
		f.w = make([]float64, k)
		f.mark = make([]int32, k)
		f.stack = make([]int32, k)
		f.estk = make([]int32, k)
		f.pvec = make([]float64, k)
		f.ud = make([]float64, k)
	}
	f.rowOf = f.rowOf[:k]
	f.stepRow = f.stepRow[:k]
	f.colOf = f.colOf[:k]
	f.w = f.w[:k]
	f.mark = f.mark[:k]
	f.stack = f.stack[:k]
	f.estk = f.estk[:k]
	f.pvec = f.pvec[:k]
	f.ud = f.ud[:k]
	for i := 0; i < k; i++ {
		f.rowOf[i] = -1
		f.mark[i] = -1
		f.w[i] = 0
	}
	f.lp = append(f.lp[:0], 0)
	f.li = f.li[:0]
	f.lx = f.lx[:0]
	f.up = append(f.up[:0], 0)
	f.ui = f.ui[:0]
	f.ux = f.ux[:0]
}

// orderCols fills colOf with the core-col slots sorted by ascending nonzero
// count (stable, so ties keep slot order): eliminating the sparsest columns
// first keeps fill-in low on the near-triangular cores the masters produce.
func (f *sparseLU) orderCols(cp []int32, k int) {
	if cap(f.cnt) < k+2 {
		f.cnt = make([]int32, k+2)
	}
	cnt := f.cnt[:k+2]
	for i := range cnt {
		cnt[i] = 0
	}
	for c := 0; c < k; c++ {
		cnt[cp[c+1]-cp[c]+1]++
	}
	for i := 1; i < len(cnt); i++ {
		cnt[i] += cnt[i-1]
	}
	for c := 0; c < k; c++ {
		n := cp[c+1] - cp[c]
		f.colOf[cnt[n]] = int32(c)
		cnt[n]++
	}
}

// factor computes the factorization of the k×k core given in compressed
// sparse column form (cp offsets, ri core-row slots, vx values). It reports
// false when no pivot above luTiny exists for some column (the core is
// numerically singular).
func (f *sparseLU) factor(cp, ri []int32, vx []float64, k int) bool {
	f.init(k)
	f.orderCols(cp, k)
	for s := 0; s < k; s++ {
		c := f.colOf[s]
		epoch := int32(s)

		// Reachability pass: the pattern of L⁻¹·G[:,c] is everything
		// reachable from the column's nonzeros through the L structure
		// (row slot → its pivot step's L column). patt collects the
		// nodes in DFS finish order.
		f.patt = f.patt[:0]
		for e := cp[c]; e < cp[c+1]; e++ {
			root := ri[e]
			if f.mark[root] == epoch {
				continue
			}
			sp := 0
			f.mark[root] = epoch
			f.stack[0] = root
			if t := f.rowOf[root]; t >= 0 {
				f.estk[0] = f.lp[t]
			} else {
				f.estk[0] = -1
			}
			for sp >= 0 {
				node := f.stack[sp]
				t := f.rowOf[node]
				if t >= 0 && f.estk[sp] < f.lp[t+1] {
					child := f.li[f.estk[sp]]
					f.estk[sp]++
					if f.mark[child] != epoch {
						f.mark[child] = epoch
						sp++
						f.stack[sp] = child
						if ct := f.rowOf[child]; ct >= 0 {
							f.estk[sp] = f.lp[ct]
						} else {
							f.estk[sp] = -1
						}
					}
					continue
				}
				f.patt = append(f.patt, node)
				sp--
			}
		}

		// Numeric pass in reverse finish order (a topological order of the
		// dependencies): scatter the column, then apply each pivoted node's
		// L column to the rows below it.
		for e := cp[c]; e < cp[c+1]; e++ {
			f.w[ri[e]] += vx[e]
		}
		for i := len(f.patt) - 1; i >= 0; i-- {
			r := f.patt[i]
			t := f.rowOf[r]
			if t < 0 {
				continue
			}
			xr := f.w[r]
			if xr == 0 {
				continue
			}
			for e := f.lp[t]; e < f.lp[t+1]; e++ {
				f.w[f.li[e]] -= xr * f.lx[e]
			}
		}

		// Partial pivoting: the largest remaining entry on an unpivoted row
		// becomes U's diagonal; everything above it (already-pivoted rows)
		// goes to U, everything below is scaled into L.
		pivRow := int32(-1)
		pivAbs := luTiny
		for _, r := range f.patt {
			if f.rowOf[r] >= 0 {
				continue
			}
			v := f.w[r]
			if v < 0 {
				v = -v
			}
			if v > pivAbs {
				pivAbs = v
				pivRow = r
			}
		}
		if pivRow < 0 {
			return false
		}
		d := f.w[pivRow]
		f.ud[s] = d
		for _, r := range f.patt {
			v := f.w[r]
			f.w[r] = 0
			if t := f.rowOf[r]; t >= 0 {
				if v != 0 {
					f.ui = append(f.ui, t)
					f.ux = append(f.ux, v)
				}
			} else if r != pivRow && v != 0 {
				f.li = append(f.li, r)
				f.lx = append(f.lx, v/d)
			}
		}
		f.up = append(f.up, int32(len(f.ui)))
		f.lp = append(f.lp, int32(len(f.li)))
		f.rowOf[pivRow] = int32(s)
		f.stepRow[s] = pivRow
	}
	return true
}

// nnz reports the factor nonzero count (L below-diagonal + U including the
// diagonal); exported to the solver's FactorStats.
func (f *sparseLU) nnz() int { return len(f.li) + len(f.ui) + f.k }

// solve solves G·x = b in place: b enters indexed by core-row slot and
// leaves indexed by core-col slot. The L and U sweeps run in the row-slot
// space along the pivot order, then the column permutation is undone.
func (f *sparseLU) solve(b []float64) {
	k := f.k
	for s := 0; s < k; s++ {
		xr := b[f.stepRow[s]]
		if xr == 0 {
			continue
		}
		for e := f.lp[s]; e < f.lp[s+1]; e++ {
			b[f.li[e]] -= xr * f.lx[e]
		}
	}
	for s := k - 1; s >= 0; s-- {
		rp := f.stepRow[s]
		x := b[rp] / f.ud[s]
		b[rp] = x
		if x == 0 {
			continue
		}
		for e := f.up[s]; e < f.up[s+1]; e++ {
			b[f.stepRow[f.ui[e]]] -= x * f.ux[e]
		}
	}
	p := f.pvec[:k]
	for s := 0; s < k; s++ {
		p[f.colOf[s]] = b[f.stepRow[s]]
	}
	copy(b[:k], p)
}

// solveT solves Gᵀ·y = c in place: c enters indexed by core-col slot and
// leaves indexed by core-row slot (Uᵀ forward, then the unit-diagonal Lᵀ
// backward, both in pivot order).
func (f *sparseLU) solveT(b []float64) {
	k := f.k
	v := f.pvec[:k]
	for s := 0; s < k; s++ {
		v[s] = b[f.colOf[s]]
	}
	for s := 0; s < k; s++ {
		sum := v[s]
		for e := f.up[s]; e < f.up[s+1]; e++ {
			sum -= f.ux[e] * v[f.ui[e]]
		}
		v[s] = sum / f.ud[s]
	}
	for s := k - 1; s >= 0; s-- {
		sum := 0.0
		for e := f.lp[s]; e < f.lp[s+1]; e++ {
			sum += f.lx[e] * v[f.rowOf[f.li[e]]]
		}
		v[s] -= sum
	}
	for s := 0; s < k; s++ {
		b[f.stepRow[s]] = v[s]
	}
}

// etaFile is the product-form update file: after pivoting column q into basis
// position r with transformed column w = B⁻¹·a_q, the new basis satisfies
// B' = B·E with E = I + (w − e_r)·e_rᵀ. The file stores the sparse
// off-diagonal entries of each w together with the pivot position and
// diagonal, and applies E⁻¹ during FTRAN (in update order) and E⁻ᵀ during
// BTRAN (in reverse order). All storage is flat slab arenas reset — capacity
// kept — at every refactorization, so steady-state pivoting does not
// allocate.
type etaFile struct {
	pos   []int32   // pivot position of each eta
	diag  []float64 // w[pos] of each eta
	start []int32   // slab offsets: eta e owns idx/val[start[e]:start[e+1]]
	idx   []int32   // off-pivot positions, concatenated
	val   []float64 // off-pivot values, concatenated
}

func (f *etaFile) count() int { return len(f.pos) }

// reset empties the file, keeping the slab capacity.
func (f *etaFile) reset() {
	f.pos = f.pos[:0]
	f.diag = f.diag[:0]
	f.start = f.start[:0]
	f.idx = f.idx[:0]
	f.val = f.val[:0]
}

// push appends the eta for a pivot at position r with transformed column w.
func (f *etaFile) push(w []float64, r int) {
	if len(f.start) == 0 {
		f.start = append(f.start, 0)
	}
	for i, v := range w {
		if i == r || math.Abs(v) <= etaDropTol {
			continue
		}
		f.idx = append(f.idx, int32(i))
		f.val = append(f.val, v)
	}
	f.pos = append(f.pos, int32(r))
	f.diag = append(f.diag, w[r])
	f.start = append(f.start, int32(len(f.idx)))
}

// applyForward applies E₁⁻¹ … E_t⁻¹ to u in place (the FTRAN tail):
// u_r ← u_r/w_r, then u_i ← u_i − w_i·u_r for the off-pivot entries.
func (f *etaFile) applyForward(u []float64) {
	for e := 0; e < len(f.pos); e++ {
		r := f.pos[e]
		t := u[r] / f.diag[e]
		if t != 0 {
			lo, hi := f.start[e], f.start[e+1]
			for s := lo; s < hi; s++ {
				u[f.idx[s]] -= f.val[s] * t
			}
		}
		u[r] = t
	}
}

// applyBackward applies E_t⁻ᵀ … E₁⁻ᵀ to v in place (the BTRAN head):
// v_r ← (v_r − Σ w_i·v_i)/w_r, other entries unchanged.
func (f *etaFile) applyBackward(v []float64) {
	for e := len(f.pos) - 1; e >= 0; e-- {
		r := f.pos[e]
		s := v[r]
		lo, hi := f.start[e], f.start[e+1]
		for t := lo; t < hi; t++ {
			s -= f.val[t] * v[f.idx[t]]
		}
		v[r] = s / f.diag[e]
	}
}

// factorState is the factorized snapshot of the basis: the singleton/core
// split and the sparse LU of the core. It is valid for the basis as of the
// last refactorization; later pivots are represented by the eta file.
type factorState struct {
	valid bool
	k     int // core dimension (number of structural basic columns)
	slu   sparseLU

	// CSC scratch holding the core matrix handed to the factorization
	// (columns in coreCol order, row indices as core-row slots).
	ccp []int32
	cri []int32
	cvx []float64

	corePos []int32 // positions holding structural basic columns, ascending
	coreCol []int32 // column ids of the core columns at snapshot time
	coreRow []int32 // rows not covered by a singleton basic, ascending
	rowCore []int32 // row → core-row index, or -1 for singleton-covered rows

	singRow []int32   // position → covered row for singleton positions, -1 for core positions
	singInv []float64 // position → 1/sign of the singleton column (0 for core positions)
}

// ensure sizes the per-row/per-position slabs for m rows.
func (fs *factorState) ensure(m int) {
	if cap(fs.rowCore) < m {
		fs.rowCore = make([]int32, m)
		fs.singRow = make([]int32, m)
		fs.singInv = make([]float64, m)
	}
	fs.rowCore = fs.rowCore[:m]
	fs.singRow = fs.singRow[:m]
	fs.singInv = fs.singInv[:m]
}
