package lp

import (
	"context"
	"errors"
	"fmt"
)

// Relation is the direction of a linear constraint.
type Relation int

const (
	// LE is a_i·x <= b_i.
	LE Relation = iota
	// GE is a_i·x >= b_i.
	GE
	// EQ is a_i·x == b_i.
	EQ
)

// String returns the usual symbol for the relation.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Term is a single coefficient of a sparse constraint row.
type Term struct {
	Var   int
	Coeff float64
}

// constraint is an internal dense constraint row.
type constraint struct {
	coeffs []float64
	rel    Relation
	rhs    float64
}

// Problem is a linear program under construction. Create one with
// NewProblem, set the objective, add constraints, then call Solve.
type Problem struct {
	numVars     int
	objective   []float64
	constraints []constraint
}

// NewProblem returns an empty maximization problem with numVars decision
// variables (all implicitly >= 0) and a zero objective.
func NewProblem(numVars int) *Problem {
	if numVars <= 0 {
		panic(fmt.Sprintf("lp: non-positive variable count %d", numVars))
	}
	return &Problem{
		numVars:   numVars,
		objective: make([]float64, numVars),
	}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective sets the maximization objective coefficients. The slice is
// copied; it must have exactly NumVars entries.
func (p *Problem) SetObjective(c []float64) {
	if len(c) != p.numVars {
		panic(fmt.Sprintf("lp: objective has %d coefficients, want %d", len(c), p.numVars))
	}
	copy(p.objective, c)
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(v int, c float64) {
	p.objective[v] = c
}

// AddConstraint adds a dense constraint row. The coefficient slice is
// copied; it must have exactly NumVars entries.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) {
	if len(coeffs) != p.numVars {
		panic(fmt.Sprintf("lp: constraint has %d coefficients, want %d", len(coeffs), p.numVars))
	}
	row := make([]float64, p.numVars)
	copy(row, coeffs)
	p.constraints = append(p.constraints, constraint{coeffs: row, rel: rel, rhs: rhs})
}

// AddSparseConstraint adds a constraint given as a list of (variable,
// coefficient) terms; coefficients of repeated variables are accumulated.
func (p *Problem) AddSparseConstraint(terms []Term, rel Relation, rhs float64) {
	row := make([]float64, p.numVars)
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.numVars {
			panic(fmt.Sprintf("lp: term variable %d out of range [0, %d)", t.Var, p.numVars))
		}
		row[t.Var] += t.Coeff
	}
	p.constraints = append(p.constraints, constraint{coeffs: row, rel: rel, rhs: rhs})
}

// Status is the outcome of a Solve call.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can be made arbitrarily large.
	Unbounded
	// IterationLimit means the solver stopped before convergence.
	IterationLimit
	// Canceled means the solve context was canceled mid-pivot. The tableau
	// is structurally consistent (pivots are atomic) but the basis is
	// neither optimal nor necessarily feasible; SolveContext reports this
	// as ErrCanceled rather than as a Solution.
	Canceled
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status     Status
	Objective  float64   // objective value of X (valid when Status == Optimal)
	X          []float64 // values of the decision variables
	Iterations int       // total simplex pivots (both phases)
	// Phase is the simplex phase the solver stopped in: 1 while searching
	// for an initial feasible basis, 2 while optimizing the objective.
	// Problems whose slack basis is immediately feasible (no artificial
	// variables needed) skip phase 1 and always report phase 2.
	Phase int
	// Feasible reports whether X is a primal feasible point. It is true for
	// Optimal solves and for phase-2 iteration limits (primal pivots preserve
	// feasibility); it is false for Infeasible, Unbounded and phase-1
	// iteration limits. In particular a phase-1 IterationLimit leaves X as
	// the all-zero vector, which in general violates the constraints and must
	// not be consumed as a solution.
	Feasible bool
	// Dual holds the optimal dual values (shadow prices) of the constraints,
	// one per AddConstraint/AddSparseConstraint call in order, with respect to
	// each constraint as given. It is populated only on a fresh Solve that
	// reached Optimal (warm incremental re-solves rewrite rows and do not
	// report duals) and is nil otherwise. For a maximization problem the dual
	// of a binding LE row is >= 0: the objective gain per unit of slack added
	// to that row's right-hand side.
	Dual []float64
}

// Options tunes the solver.
type Options struct {
	// MaxIterations bounds the total number of pivots (default: 50 times
	// the number of rows plus columns).
	MaxIterations int
	// Tolerance is the numerical tolerance used for pivoting and
	// feasibility tests (default 1e-9).
	Tolerance float64
	// RefactorInterval overrides the update-count refactorization trigger of
	// the revised simplex (default etaLimit): after this many eta updates the
	// basis factorization is rebuilt from scratch. Lower values trade
	// refactorization work for shorter eta chains; tests use 1–8 to pin the
	// refactor-boundary behavior. Ignored by the dense solvers.
	RefactorInterval int
}

// ErrBadProblem is returned for structurally invalid problems.
var ErrBadProblem = errors.New("lp: invalid problem")

// ErrCanceled is returned when a solve context is canceled before the
// simplex reaches a verdict. Every layer above the solver (steady sessions,
// the planning service) wraps — never replaces — this sentinel, so
// errors.Is(err, lp.ErrCanceled) identifies a deadline/cancellation outcome
// at any level of the stack.
var ErrCanceled = errors.New("solve canceled")

// cancelCheckInterval is how many pivots the simplex loops run between
// context checks: coarse enough that the check is free compared to a dense
// pivot, fine enough that cancellation latency is a handful of pivots.
const cancelCheckInterval = 64

// Solve solves the problem with the two-phase primal simplex method.
func Solve(p *Problem, opts *Options) (*Solution, error) {
	return SolveContext(context.Background(), p, opts)
}

// SolveContext is Solve with cooperative cancellation: the pivot loops check
// ctx every cancelCheckInterval pivots and abandon the solve with an error
// wrapping ErrCanceled once the context is done. A nil ctx is treated as
// context.Background().
func SolveContext(ctx context.Context, p *Problem, opts *Options) (*Solution, error) {
	sol, _, err := solveWithTableau(ctx, p, opts)
	return sol, err
}

// canceledErr builds the error for an abandoned solve, preserving the
// ErrCanceled sentinel and the context's own cause.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("lp: %w: %v", ErrCanceled, ctx.Err())
}

// maxIterations resolves the pivot budget for a tableau of the given size.
func maxIterations(opts *Options, t *tableau) int {
	if opts != nil && opts.MaxIterations > 0 {
		return opts.MaxIterations
	}
	return 50 * (t.rows + t.cols)
}

// solveWithTableau is Solve, additionally returning the final tableau so the
// incremental solver can keep pivoting on it. The tableau is nil when the
// problem was decided without building one (no constraints) or when the
// solve was canceled (a mid-pivot basis must not be reused).
func solveWithTableau(ctx context.Context, p *Problem, opts *Options) (*Solution, *tableau, error) {
	if p == nil || p.numVars == 0 {
		return nil, nil, ErrBadProblem
	}
	tol := 1e-9
	if opts != nil && opts.Tolerance > 0 {
		tol = opts.Tolerance
	}

	m := len(p.constraints)
	if m == 0 {
		// No constraints: optimum is 0 if all objective coefficients are
		// non-positive, unbounded otherwise.
		for _, c := range p.objective {
			if c > tol {
				return &Solution{Status: Unbounded, X: make([]float64, p.numVars), Phase: 2}, nil, nil
			}
		}
		return &Solution{Status: Optimal, Objective: 0, X: make([]float64, p.numVars), Phase: 2, Feasible: true, Dual: []float64{}}, nil, nil
	}

	t := newTableau(p, tol)
	maxIter := maxIterations(opts, t)

	sol := &Solution{X: make([]float64, p.numVars)}

	// Phase 1: drive artificial variables to zero, if any are needed.
	if t.numArtificial > 0 {
		sol.Phase = 1
		phase1 := make([]float64, t.cols)
		for _, j := range t.artificialCols {
			phase1[j] = -1
		}
		t.setCostRow(phase1)
		status := t.iterate(ctx, maxIter, &sol.Iterations, false)
		if status == Canceled {
			return nil, nil, canceledErr(ctx)
		}
		if status == IterationLimit {
			// No feasible basis was reached: X stays all-zero and is NOT a
			// feasible point. Callers must check Phase (or Feasible) before
			// consuming X.
			sol.Status = IterationLimit
			return sol, t, nil
		}
		// The phase-1 optimum is -(sum of artificials); a strictly negative
		// value means some artificial variable cannot be driven to zero.
		if t.objectiveValue() < -1e-7 {
			sol.Status = Infeasible
			return sol, t, nil
		}
		t.forbidArtificials()
	}

	// Phase 2: optimize the real objective.
	sol.Phase = 2
	phase2 := make([]float64, t.cols)
	copy(phase2, p.objective)
	t.setCostRow(phase2)
	status := t.iterate(ctx, maxIter, &sol.Iterations, true)
	if status == Canceled {
		return nil, nil, canceledErr(ctx)
	}
	sol.Status = status
	if status == Unbounded {
		return sol, t, nil
	}
	// Optimal or phase-2 iteration limit: the basis is primal feasible
	// either way, so X is a usable point.
	t.extract(sol.X)
	sol.Objective = dot(p.objective, sol.X)
	sol.Feasible = true
	if status == Optimal {
		sol.Dual = t.duals()
	}
	return sol, t, nil
}

// Minimize converts a minimization objective into the maximization form
// expected by Problem.SetObjective (it simply negates the coefficients) and
// returns the negated vector. The optimal objective of the original
// minimization problem is then -Solution.Objective.
func Minimize(c []float64) []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = -v
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
