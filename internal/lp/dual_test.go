package lp

import (
	"math"
	"testing"
)

// checkDuals verifies strong duality (c·x == y·b) and complementary
// slackness for a solved problem whose constraints are given as rows.
func checkDuals(t *testing.T, sol *Solution, obj []float64, rows [][]float64, rels []Relation, rhs []float64) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if len(sol.Dual) != len(rows) {
		t.Fatalf("got %d duals, want %d", len(sol.Dual), len(rows))
	}
	// Strong duality: the primal objective equals y·b.
	var yb float64
	for i, y := range sol.Dual {
		yb += y * rhs[i]
	}
	if math.Abs(yb-sol.Objective) > 1e-7 {
		t.Fatalf("strong duality violated: y·b = %v, objective = %v", yb, sol.Objective)
	}
	// Dual feasibility on the structural variables: for a maximization,
	// yᵀA_j >= c_j for every variable j (equality when x_j > 0).
	for j := range obj {
		var ya float64
		for i, row := range rows {
			ya += sol.Dual[i] * row[j]
		}
		if ya < obj[j]-1e-7 {
			t.Errorf("dual infeasible at var %d: yᵀA_j = %v < c_j = %v", j, ya, obj[j])
		}
		if sol.X[j] > 1e-9 && math.Abs(ya-obj[j]) > 1e-7 {
			t.Errorf("complementary slackness violated at var %d: x = %v, yᵀA_j - c_j = %v", j, sol.X[j], ya-obj[j])
		}
	}
	// Complementary slackness on the rows: a slack constraint has zero dual.
	for i, row := range rows {
		var ax float64
		for j, v := range row {
			ax += v * sol.X[j]
		}
		slack := rhs[i] - ax
		if rels[i] == GE {
			slack = ax - rhs[i]
		}
		if slack > 1e-7 && math.Abs(sol.Dual[i]) > 1e-7 {
			t.Errorf("row %d is slack (%v) but has dual %v", i, slack, sol.Dual[i])
		}
	}
}

func TestDualsSimpleLE(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6. Optimum (4, 0) with
	// only the first row tight, so y = (3, 0).
	obj := []float64{3, 2}
	rows := [][]float64{{1, 1}, {1, 3}}
	rels := []Relation{LE, LE}
	rhs := []float64{4, 6}
	p := NewProblem(2)
	p.SetObjective(obj)
	for i, r := range rows {
		p.AddConstraint(r, rels[i], rhs[i])
	}
	sol := solveOK(t, p)
	checkDuals(t, sol, obj, rows, rels, rhs)
	// This instance is non-degenerate with a unique dual: y = (3, 0).
	if math.Abs(sol.Dual[0]-3) > 1e-7 || math.Abs(sol.Dual[1]-0) > 1e-7 {
		t.Fatalf("duals = %v, want [3 0]", sol.Dual)
	}
}

func TestDualsMixedRelations(t *testing.T) {
	// maximize x + y s.t. x + y <= 10, x >= 2, x + 2y == 12.
	obj := []float64{1, 1}
	rows := [][]float64{{1, 1}, {1, 0}, {1, 2}}
	rels := []Relation{LE, GE, EQ}
	rhs := []float64{10, 2, 12}
	p := NewProblem(2)
	p.SetObjective(obj)
	for i, r := range rows {
		p.AddConstraint(r, rels[i], rhs[i])
	}
	sol := solveOK(t, p)
	checkDuals(t, sol, obj, rows, rels, rhs)
}

func TestDualsFlippedRow(t *testing.T) {
	// A negative right-hand side forces newTableau to negate the row;
	// -x - y <= -3 is x + y >= 3. maximize -x - 2y s.t. -x - y <= -3.
	// Optimum x=3, y=0, objective -3; dObj/drhs for the row as given is +1
	// (relaxing -3 toward -2 raises the objective by 1).
	obj := []float64{-1, -2}
	rows := [][]float64{{-1, -1}}
	rels := []Relation{LE}
	rhs := []float64{-3}
	p := NewProblem(2)
	p.SetObjective(obj)
	p.AddConstraint(rows[0], rels[0], rhs[0])
	sol := solveOK(t, p)
	checkDuals(t, sol, obj, rows, rels, rhs)
	if math.Abs(sol.Dual[0]-1) > 1e-7 {
		t.Fatalf("flipped-row dual = %v, want 1", sol.Dual[0])
	}
}

func TestDualsAbsentOffOptimal(t *testing.T) {
	// An unbounded problem must not report duals.
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{-1}, LE, 1)
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
	if sol.Dual != nil {
		t.Fatalf("unbounded solve reported duals %v", sol.Dual)
	}
}
