package lp

import (
	"context"
	"math"
)

// pollCtx reports whether the context is done. It is called from the pivot
// loops every cancelCheckInterval pivots; a nil context never cancels.
func pollCtx(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// tableau is the dense simplex tableau. Columns are laid out as
// [decision variables | slack/surplus variables | artificial variables],
// with the right-hand side stored separately. Row i describes the current
// expression of basic variable basis[i] in terms of the non-basic columns.
type tableau struct {
	rows int // number of constraints
	cols int // total number of structural columns (vars + slacks + artificials)

	a     [][]float64 // rows x cols coefficient matrix
	rhs   []float64   // rows right-hand sides (always kept >= 0 up to tolerance)
	basis []int       // column currently basic in each row

	cost    []float64 // current reduced-cost row (length cols)
	costRHS float64   // negative of the current objective value

	numVars        int
	numArtificial  int
	artificialCols []int
	banned         []bool // columns forbidden from entering (artificials in phase 2)

	// idCols[i] is the identity column created for row i (the slack of an LE
	// row, the artificial of a GE/EQ row): the column whose initial
	// coefficient vector is the i-th unit vector. At optimality its reduced
	// cost is -y_i, the simplex multiplier of the row, which is how duals()
	// recovers the shadow prices without a separate basis inverse. rowSign[i]
	// is -1 when the row was negated on entry (negative right-hand side), so
	// the dual is reported with respect to the constraint as given.
	idCols  []int
	rowSign []float64

	tol float64
}

// newTableau builds the initial tableau for the problem: every constraint
// gets a slack (LE), a surplus plus an artificial (GE), or an artificial
// (EQ); rows with negative right-hand sides are negated first so the
// starting basis (slacks and artificials) is feasible.
func newTableau(p *Problem, tol float64) *tableau {
	m := len(p.constraints)
	n := p.numVars

	// First pass: count slack and artificial columns.
	numSlack, numArtificial := 0, 0
	for _, c := range p.constraints {
		rel, rhs := c.rel, c.rhs
		if rhs < 0 {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArtificial++
		case EQ:
			numArtificial++
		}
	}

	cols := n + numSlack + numArtificial
	t := &tableau{
		rows:    m,
		cols:    cols,
		a:       make([][]float64, m),
		rhs:     make([]float64, m),
		basis:   make([]int, m),
		cost:    make([]float64, cols),
		numVars: n,
		banned:  make([]bool, cols),
		idCols:  make([]int, m),
		rowSign: make([]float64, m),
		tol:     tol,
	}

	slackCol := n
	artCol := n + numSlack
	for i, c := range p.constraints {
		row := make([]float64, cols)
		rhs := c.rhs
		sign := 1.0
		rel := c.rel
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			rel = flip(rel)
		}
		for j, v := range c.coeffs {
			row[j] = sign * v
		}
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			t.idCols[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			t.idCols[i] = artCol
			t.artificialCols = append(t.artificialCols, artCol)
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			t.idCols[i] = artCol
			t.artificialCols = append(t.artificialCols, artCol)
			artCol++
		}
		t.rowSign[i] = sign
		t.a[i] = row
		t.rhs[i] = rhs
	}
	t.numArtificial = numArtificial
	return t
}

func flip(r Relation) Relation {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// setCostRow installs a new objective (given over all structural columns;
// missing entries are zero) and prices it against the current basis so that
// t.cost holds reduced costs and t.costRHS holds the negated objective value.
func (t *tableau) setCostRow(c []float64) {
	copy(t.cost, c)
	for j := len(c); j < t.cols; j++ {
		t.cost[j] = 0
	}
	t.costRHS = 0
	for i := 0; i < t.rows; i++ {
		cb := basicCost(c, t.basis[i])
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			t.cost[j] -= cb * row[j]
		}
		t.costRHS -= cb * t.rhs[i]
	}
}

func basicCost(c []float64, col int) float64 {
	if col < len(c) {
		return c[col]
	}
	return 0
}

// objectiveValue returns the current objective value.
func (t *tableau) objectiveValue() float64 { return -t.costRHS }

// forbidArtificials bans artificial columns from entering the basis (used
// when switching to phase 2) and tries to pivot any artificial variable that
// is still basic (necessarily at level zero) out of the basis.
func (t *tableau) forbidArtificials() {
	isArtificial := make(map[int]bool, len(t.artificialCols))
	for _, j := range t.artificialCols {
		t.banned[j] = true
		isArtificial[j] = true
	}
	for i := 0; i < t.rows; i++ {
		if !isArtificial[t.basis[i]] {
			continue
		}
		// Pivot on any non-artificial column with a nonzero coefficient.
		for j := 0; j < t.cols; j++ {
			if t.banned[j] {
				continue
			}
			if math.Abs(t.a[i][j]) > t.tol {
				t.pivot(i, j)
				break
			}
		}
		// If no pivot column exists the row is redundant; the artificial
		// stays basic at zero, which does not affect the optimum.
	}
}

// iterate runs primal simplex pivots until optimality, unboundedness or the
// iteration limit. detectUnbounded controls whether an entering column with
// no positive row coefficient reports Unbounded (phase 1 can never be
// unbounded, so it passes false).
//
// Pricing uses Dantzig's rule and permanently switches to Bland's rule once
// the objective value stalls for a long stretch of (necessarily degenerate)
// pivots, which guarantees termination without paying Bland's slow
// convergence on well-behaved problems.
func (t *tableau) iterate(ctx context.Context, maxIter int, counter *int, detectUnbounded bool) Status {
	stallLimit := 4 * (t.rows + 16)
	lastObjective := t.objectiveValue()
	stalled := 0
	useBland := false
	for {
		if *counter%cancelCheckInterval == 0 && pollCtx(ctx) {
			return Canceled
		}
		if !useBland {
			if obj := t.objectiveValue(); obj > lastObjective+t.tol {
				lastObjective = obj
				stalled = 0
			} else {
				stalled++
				if stalled > stallLimit {
					useBland = true
				}
			}
		}

		enter := t.chooseEntering(useBland)
		if enter < 0 {
			return Optimal
		}
		// Optimality is checked before the budget so that a basis that is
		// already optimal when the last pivot exhausted the allowance (the
		// warm re-solve's dual phase routinely ends exactly on budget) is
		// reported Optimal, not IterationLimit.
		if *counter >= maxIter {
			return IterationLimit
		}
		leave := t.chooseLeaving(enter)
		if leave < 0 {
			if detectUnbounded {
				return Unbounded
			}
			// Phase 1 objective is bounded above by zero; a missing ratio
			// here can only be a numerical artifact. Treat as optimal.
			return Optimal
		}
		t.pivot(leave, enter)
		*counter++
	}
}

// chooseEntering picks the entering column: the one with the most positive
// reduced cost (Dantzig) or the lowest-index positive one (Bland).
func (t *tableau) chooseEntering(bland bool) int {
	best := -1
	bestVal := t.tol
	for j := 0; j < t.cols; j++ {
		if t.banned[j] {
			continue
		}
		if t.cost[j] > bestVal {
			if bland {
				return j
			}
			best = j
			bestVal = t.cost[j]
		}
	}
	return best
}

// relTol is the comparison tolerance for quantities of the magnitude of ref:
// the base tolerance plus a component proportional to |ref|, so that ratio
// comparisons (and hence pivot selection) do not flip when the problem data
// is scaled up. The absolute floor is deliberate: degenerate bases produce
// swarms of ratios differing only by noise around zero, and merging those
// into ties (resolved by the deterministic tie-breaks of the callers) is
// what keeps the pivoting from crawling through degenerate stretches — so
// rescaling a platform far enough *down* that distinct ratios sink below the
// floor still lands in the tie regime, by design.
func (t *tableau) relTol(ref float64) float64 {
	if ref < 0 {
		ref = -ref
	}
	if math.IsInf(ref, 1) {
		return t.tol
	}
	return t.tol * (1 + ref)
}

// chooseLeaving performs the minimum-ratio test for the entering column and
// returns the pivot row, or -1 if no row bounds the entering variable.
// Ties (up to a tolerance relative to the ratio magnitude, so the choice does
// not flip on rescaled platforms) are broken by the smallest basic-variable
// index — a lexicographic-ish rule that combines well with the Bland
// fallback.
func (t *tableau) chooseLeaving(enter int) int {
	best := -1
	bestRatio := 0.0
	for i := 0; i < t.rows; i++ {
		coef := t.a[i][enter]
		if coef <= t.tol {
			continue
		}
		ratio := t.rhs[i] / coef
		if best < 0 {
			best, bestRatio = i, ratio
			continue
		}
		eps := t.relTol(bestRatio)
		switch {
		case ratio < bestRatio-eps:
			best, bestRatio = i, ratio
		case ratio <= bestRatio+eps && t.basis[i] < t.basis[best]:
			best = i
			if ratio < bestRatio {
				bestRatio = ratio
			}
		}
	}
	return best
}

// appendRowLE adds the constraint coeffs·x <= rhs (coeffs given over the
// decision variables) to a tableau that is already in simplex canonical form,
// without disturbing the current basis: a fresh slack column becomes basic in
// the new row, which is then expressed over the non-basic columns by
// eliminating every currently-basic column. The basic columns form an
// identity across the existing rows, so a single subtraction per row suffices
// and no eliminated entry reappears. The resulting right-hand side may be
// negative — the standard situation for a violated cutting plane — in which
// case the basis is primal infeasible but still dual feasible, and
// dualIterate restores feasibility.
func (t *tableau) appendRowLE(coeffs []float64, rhs float64) {
	slack := t.cols
	t.cols++
	for i := 0; i < t.rows; i++ {
		t.a[i] = append(t.a[i], 0)
	}
	t.cost = append(t.cost, 0)
	t.banned = append(t.banned, false)

	row := make([]float64, t.cols)
	copy(row, coeffs)
	row[slack] = 1
	for i := 0; i < t.rows; i++ {
		factor := row[t.basis[i]]
		if factor == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.cols; j++ {
			row[j] -= factor * ai[j]
		}
		row[t.basis[i]] = 0
		rhs -= factor * t.rhs[i]
	}
	t.a = append(t.a, row)
	t.rhs = append(t.rhs, rhs)
	t.basis = append(t.basis, slack)
	t.idCols = append(t.idCols, slack)
	t.rowSign = append(t.rowSign, 1)
	t.rows++
}

// duals returns the simplex multipliers (shadow prices) of the constraint
// rows with respect to the constraints as originally given: the reduced cost
// of each row's identity column is -y_i for the stored (sign-normalized) row,
// and rowSign maps it back onto the caller's orientation. The values are
// meaningful only at phase-2 optimality, where setCostRow has repriced every
// column — banned artificials included — against the optimal basis.
func (t *tableau) duals() []float64 {
	out := make([]float64, t.rows)
	for i := 0; i < t.rows; i++ {
		out[i] = -t.cost[t.idCols[i]] * t.rowSign[i]
	}
	return out
}

// infeasibility is the total primal infeasibility: the negated sum of the
// negative right-hand sides.
func (t *tableau) infeasibility() float64 {
	var s float64
	for _, r := range t.rhs {
		if r < 0 {
			s -= r
		}
	}
	return s
}

// dualIterate restores primal feasibility with dual simplex pivots, keeping
// the cost row dual feasible (no reduced cost above tolerance) throughout. It
// is the re-optimization engine of the incremental solver: rows appended by
// appendRowLE may carry a negative right-hand side, and each dual pivot
// drives one such row back into range while the objective only decreases.
// It returns Optimal once every right-hand side is non-negative (the point is
// then both primal and dual feasible), Infeasible when some negative row has
// no eligible entering column (that row is unsatisfiable), or IterationLimit.
//
// Row selection takes the most negative right-hand side and permanently
// switches to Bland-style smallest-basis-index selection once the total
// infeasibility stalls — the dual analogue of the primal anti-cycling
// fallback in iterate. The entering column minimizes the dual ratio
// |cost/coefficient| with smallest-index tie-breaking.
func (t *tableau) dualIterate(ctx context.Context, maxIter int, counter *int) Status {
	stallLimit := 4 * (t.rows + 16)
	lastInfeas := t.infeasibility()
	stalled := 0
	useBland := false
	for {
		if *counter%cancelCheckInterval == 0 && pollCtx(ctx) {
			return Canceled
		}
		leave := -1
		if useBland {
			for i := 0; i < t.rows; i++ {
				if t.rhs[i] < -t.tol && (leave < 0 || t.basis[i] < t.basis[leave]) {
					leave = i
				}
			}
		} else {
			worst := -t.tol
			for i := 0; i < t.rows; i++ {
				if t.rhs[i] < worst {
					worst = t.rhs[i]
					leave = i
				}
			}
		}
		if leave < 0 {
			return Optimal
		}
		if *counter >= maxIter {
			return IterationLimit
		}
		row := t.a[leave]
		enter := -1
		bestRatio := 0.0
		for j := 0; j < t.cols; j++ {
			if t.banned[j] || row[j] >= -t.tol {
				continue
			}
			// cost[j] <= tol (dual feasibility) and row[j] < 0, so the ratio
			// is >= 0 up to tolerance; the smallest ratio keeps every reduced
			// cost non-positive after the pivot.
			ratio := t.cost[j] / row[j]
			eps := t.relTol(bestRatio)
			switch {
			case enter < 0 || ratio < bestRatio-eps:
				enter, bestRatio = j, ratio
			case !useBland && ratio <= bestRatio+eps && row[j] < row[enter]:
				// Tied ratio (the common case here: objectives with few
				// nonzero coefficients leave most reduced costs at zero, so
				// almost every ratio is zero). Prefer the largest-magnitude
				// pivot element: it divides the leaving row's negative
				// right-hand side by more, re-injecting less infeasibility
				// into the other rows and so escaping degenerate stretches
				// much faster than a fixed smallest-index choice.
				enter = j
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
		if enter < 0 {
			return Infeasible
		}
		t.pivot(leave, enter)
		*counter++
		if !useBland {
			if s := t.infeasibility(); s < lastInfeas-t.tol {
				lastInfeas = s
				stalled = 0
			} else {
				stalled++
				if stalled > stallLimit {
					useBland = true
				}
			}
		}
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	row := t.a[leave]
	p := row[enter]
	inv := 1 / p
	for j := 0; j < t.cols; j++ {
		row[j] *= inv
	}
	t.rhs[leave] *= inv
	row[enter] = 1 // avoid drift

	for i := 0; i < t.rows; i++ {
		if i == leave {
			continue
		}
		factor := t.a[i][enter]
		if factor == 0 {
			continue
		}
		target := t.a[i]
		for j := 0; j < t.cols; j++ {
			target[j] -= factor * row[j]
		}
		target[enter] = 0
		t.rhs[i] -= factor * t.rhs[leave]
		if t.rhs[i] < 0 && t.rhs[i] > -t.tol {
			t.rhs[i] = 0
		}
	}

	factor := t.cost[enter]
	if factor != 0 {
		for j := 0; j < t.cols; j++ {
			t.cost[j] -= factor * row[j]
		}
		t.cost[enter] = 0
		t.costRHS -= factor * t.rhs[leave]
	}
	t.basis[leave] = enter
}

// extract writes the values of the decision variables into x.
func (t *tableau) extract(x []float64) {
	for i := range x {
		x[i] = 0
	}
	for i := 0; i < t.rows; i++ {
		b := t.basis[i]
		if b < t.numVars {
			v := t.rhs[i]
			if v < 0 && v > -t.tol {
				v = 0
			}
			x[b] = v
		}
	}
}
