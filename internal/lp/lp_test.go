package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("relation strings wrong")
	}
	if Relation(9).String() == "" {
		t.Fatal("unknown relation string empty")
	}
	for _, s := range []Status{Optimal, Infeasible, Unbounded, IterationLimit, Status(9)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

func TestSimpleMaximization(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6.
	p := NewProblem(2)
	p.SetObjective([]float64{3, 2})
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 3}, LE, 6)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-12) > 1e-7 {
		t.Fatalf("objective = %v, want 12", sol.Objective)
	}
	if math.Abs(sol.X[0]-4) > 1e-7 || math.Abs(sol.X[1]) > 1e-7 {
		t.Fatalf("x = %v, want [4 0]", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// maximize x + y s.t. x + y = 5, x <= 3.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-5) > 1e-7 {
		t.Fatalf("objective = %v, want 5", sol.Objective)
	}
	if math.Abs(sol.X[0]+sol.X[1]-5) > 1e-7 {
		t.Fatalf("equality violated: %v", sol.X)
	}
}

func TestMinimizationViaNegation(t *testing.T) {
	// minimize x + y s.t. x + 2y >= 4, 3x + y >= 6 -> optimum 2.8 at (1.6, 1.2).
	p := NewProblem(2)
	p.SetObjective(Minimize([]float64{1, 1}))
	p.AddConstraint([]float64{1, 2}, GE, 4)
	p.AddConstraint([]float64{3, 1}, GE, 6)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(-sol.Objective-2.8) > 1e-6 {
		t.Fatalf("minimum = %v, want 2.8", -sol.Objective)
	}
	if math.Abs(sol.X[0]-1.6) > 1e-6 || math.Abs(sol.X[1]-1.2) > 1e-6 {
		t.Fatalf("x = %v, want [1.6 1.2]", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	// x + y = 10 with x <= 2, y <= 3 is infeasible.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 0})
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, 0}, LE, 2)
	p.AddConstraint([]float64{0, 1}, LE, 3)
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// maximize x with only y bounded.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 0})
	p.AddConstraint([]float64{0, 1}, LE, 1)
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNoConstraints(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{0, -1})
	sol := solveOK(t, p)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("sol = %+v", sol)
	}
	p.SetObjective([]float64{1, 0})
	sol = solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x - y <= -2  is  x + y >= 2; minimize x + y -> 2.
	p := NewProblem(2)
	p.SetObjective(Minimize([]float64{1, 1}))
	p.AddConstraint([]float64{-1, -1}, LE, -2)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(-sol.Objective-2) > 1e-7 {
		t.Fatalf("minimum = %v, want 2", -sol.Objective)
	}
}

func TestSparseConstraint(t *testing.T) {
	p := NewProblem(4)
	p.SetObjective([]float64{1, 1, 1, 1})
	p.AddSparseConstraint([]Term{{Var: 0, Coeff: 1}, {Var: 2, Coeff: 1}, {Var: 0, Coeff: 1}}, LE, 4)
	p.AddSparseConstraint([]Term{{Var: 1, Coeff: 1}, {Var: 3, Coeff: 2}}, LE, 2)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// 2x0 + x2 <= 4 and x1 + 2x3 <= 2; best is x2=4, x1=2 -> objective 6.
	if math.Abs(sol.Objective-6) > 1e-7 {
		t.Fatalf("objective = %v, want 6", sol.Objective)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// A classic degenerate corner: multiple constraints meet at the optimum.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{0, 1}, LE, 1)
	p.AddConstraint([]float64{1, 1}, LE, 2)
	p.AddConstraint([]float64{2, 1}, LE, 3)
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-7 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestMixedConstraintTypes(t *testing.T) {
	// maximize 2x + 3y s.t. x + y <= 10, x >= 2, y = 3 -> x = 7, y = 3, obj 23.
	p := NewProblem(2)
	p.SetObjective([]float64{2, 3})
	p.AddConstraint([]float64{1, 1}, LE, 10)
	p.AddConstraint([]float64{1, 0}, GE, 2)
	p.AddConstraint([]float64{0, 1}, EQ, 3)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-23) > 1e-7 {
		t.Fatalf("objective = %v, want 23", sol.Objective)
	}
	if math.Abs(sol.X[1]-3) > 1e-7 {
		t.Fatalf("y = %v, want 3", sol.X[1])
	}
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem(3)
	p.SetObjective([]float64{1, 1, 1})
	p.AddConstraint([]float64{1, 1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 0, 1}, LE, 4)
	sol, err := Solve(p, &Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterationLimit && sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
}

// TestPhase1IterationLimitIsMarkedInfeasible is the regression test for the
// silent zero-throughput bug: when phase 1 exhausts the pivot budget, the
// returned all-zero X is NOT a feasible point and the solution must say so
// (Phase 1, Feasible false) so callers cannot mistake it for a solution.
func TestPhase1IterationLimitIsMarkedInfeasible(t *testing.T) {
	// The equality row needs an artificial variable, so phase 1 must run and
	// cannot finish within a single pivot.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	p.AddConstraint([]float64{0, 1}, LE, 3)
	sol, err := Solve(p, &Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterationLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
	if sol.Phase != 1 {
		t.Fatalf("phase = %d, want 1", sol.Phase)
	}
	if sol.Feasible {
		t.Fatal("phase-1 limited solution marked feasible (X is all-zero and violates the equality)")
	}
}

// TestPhase2IterationLimitStaysFeasible checks the complementary contract: a
// limit hit during phase 2 still leaves a primal feasible point, which
// callers may use (the cutting-plane loop separates cuts against it).
func TestPhase2IterationLimitStaysFeasible(t *testing.T) {
	p := NewProblem(3)
	p.SetObjective([]float64{1, 2, 3})
	p.AddConstraint([]float64{1, 1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 0, 1}, LE, 4)
	sol, err := Solve(p, &Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterationLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
	if sol.Phase != 2 {
		t.Fatalf("phase = %d, want 2 (pure LE problems skip phase 1)", sol.Phase)
	}
	if !sol.Feasible {
		t.Fatal("phase-2 limited solution not marked feasible")
	}
	// The point must actually satisfy the constraints.
	if sol.X[0]+sol.X[1] > 4+1e-9 || sol.X[1]+sol.X[2] > 4+1e-9 || sol.X[0]+sol.X[2] > 4+1e-9 {
		t.Fatalf("extracted X %v violates the constraints", sol.X)
	}
}

// TestOptimalSolutionsAreMarkedFeasible pins the Feasible/Phase metadata on
// the happy path.
func TestOptimalSolutionsAreMarkedFeasible(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{3, 2})
	p.AddConstraint([]float64{1, 1}, LE, 4)
	sol := solveOK(t, p)
	if sol.Status != Optimal || !sol.Feasible || sol.Phase != 2 {
		t.Fatalf("sol = %+v, want optimal/feasible/phase-2", sol)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewProblem(0)", func() { NewProblem(0) })
	mustPanic("short objective", func() { NewProblem(2).SetObjective([]float64{1}) })
	mustPanic("short constraint", func() { NewProblem(2).AddConstraint([]float64{1}, LE, 1) })
	mustPanic("bad sparse var", func() {
		NewProblem(2).AddSparseConstraint([]Term{{Var: 5, Coeff: 1}}, LE, 1)
	})
}

func TestSolveNilProblem(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestSetObjectiveCoeff(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoeff(1, 5)
	p.AddConstraint([]float64{1, 1}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-10) > 1e-7 {
		t.Fatalf("objective = %v, want 10", sol.Objective)
	}
	if p.NumVars() != 2 || p.NumConstraints() != 1 {
		t.Fatal("accessors wrong")
	}
}

// TestKnownTransportationProblem solves a small transportation LP with a
// known optimum (minimize shipping cost).
func TestKnownTransportationProblem(t *testing.T) {
	// Two supplies (10, 15), three demands (8, 7, 10).
	// Costs: s0 -> (4, 6, 8), s1 -> (5, 3, 7).
	// Variables x[s][d] flattened as s*3+d.
	p := NewProblem(6)
	p.SetObjective(Minimize([]float64{4, 6, 8, 5, 3, 7}))
	p.AddConstraint([]float64{1, 1, 1, 0, 0, 0}, LE, 10)
	p.AddConstraint([]float64{0, 0, 0, 1, 1, 1}, LE, 15)
	p.AddConstraint([]float64{1, 0, 0, 1, 0, 0}, EQ, 8)
	p.AddConstraint([]float64{0, 1, 0, 0, 1, 0}, EQ, 7)
	p.AddConstraint([]float64{0, 0, 1, 0, 0, 1}, EQ, 10)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Optimal plan: s0 ships 8 to d0 and 2 to d2; s1 ships 7 to d1 and 8 to d2.
	// Cost = 8*4 + 2*8 + 7*3 + 8*7 = 32 + 16 + 21 + 56 = 125.
	if math.Abs(-sol.Objective-125) > 1e-6 {
		t.Fatalf("cost = %v, want 125", -sol.Objective)
	}
}

// TestBoundedBoxProperty checks a family of LPs with a known closed-form
// optimum: maximize sum(x) with per-variable bounds x_i <= b_i and a global
// budget sum(x) <= S. The optimum is min(sum(b), S).
func TestBoundedBoxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		p := NewProblem(n)
		obj := make([]float64, n)
		bounds := make([]float64, n)
		var sumB float64
		for i := range obj {
			obj[i] = 1
			bounds[i] = 0.5 + 5*rng.Float64()
			sumB += bounds[i]
			row := make([]float64, n)
			row[i] = 1
			p.AddConstraint(row, LE, bounds[i])
		}
		p.SetObjective(obj)
		budget := 0.5 + 10*rng.Float64()
		all := make([]float64, n)
		for i := range all {
			all[i] = 1
		}
		p.AddConstraint(all, LE, budget)
		sol, err := Solve(p, nil)
		if err != nil || sol.Status != Optimal {
			return false
		}
		want := math.Min(sumB, budget)
		if math.Abs(sol.Objective-want) > 1e-6 {
			return false
		}
		// The solution must be feasible.
		var sum float64
		for i, x := range sol.X {
			if x < -1e-9 || x > bounds[i]+1e-6 {
				return false
			}
			sum += x
		}
		return sum <= budget+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomFeasibleLPsAreSolvedConsistently generates random LPs with <=
// constraints and non-negative right-hand sides (always feasible at the
// origin) and checks that the solver returns a feasible solution whose
// objective is at least as good as a sample of random feasible points.
func TestRandomFeasibleLPsAreSolvedConsistently(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p := NewProblem(n)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = rng.Float64() // non-negative objective
		}
		p.SetObjective(obj)
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = rng.Float64() // non-negative coefficients -> bounded
			}
			rows[i][rng.Intn(n)] += 0.5 // ensure at least one strictly positive entry
			rhs[i] = 1 + rng.Float64()*5
			p.AddConstraint(rows[i], LE, rhs[i])
		}
		// Make sure every variable appears in some constraint so the problem
		// is bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddConstraint(row, LE, 10)
		}
		sol, err := Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		// Feasibility check.
		for i := 0; i < m; i++ {
			var lhs float64
			for j := 0; j < n; j++ {
				lhs += rows[i][j] * sol.X[j]
			}
			if lhs > rhs[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated (%v > %v)", trial, i, lhs, rhs[i])
			}
		}
		// Compare against random feasible points obtained by scaling random
		// directions until all constraints hold.
		for probe := 0; probe < 20; probe++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 10
			}
			scale := 1.0
			for i := 0; i < m; i++ {
				var lhs float64
				for j := 0; j < n; j++ {
					lhs += rows[i][j] * x[j]
				}
				if lhs > rhs[i] {
					if s := rhs[i] / lhs; s < scale {
						scale = s
					}
				}
			}
			var val float64
			for j := range x {
				val += obj[j] * x[j] * scale
			}
			if val > sol.Objective+1e-6 {
				t.Fatalf("trial %d: random feasible point beats the optimum (%v > %v)", trial, val, sol.Objective)
			}
		}
	}
}
