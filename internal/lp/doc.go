// Package lp implements simplex solvers for linear programs in the form
//
//	maximize    c·x
//	subject to  a_i·x {<=, =, >=} b_i   for every constraint i
//	            x >= 0
//
// It replaces the Maple/MuPAD LP solver the paper uses to compute the
// optimal steady-state broadcast throughput (Section 4.1), sized for the
// master problems produced by the cutting-plane decomposition in package
// steady (a few hundred variables, up to thousands of cut rows).
//
// Three entry points are provided, all held to one differential contract
// (agreement within 1e-6 relative, pinned by the FuzzIncrementalLP
// three-way fuzz target and the registry-wide steady tiers):
//
//   - Solve performs a one-shot cold solve from the slack basis with the
//     dense two-phase primal simplex (Dantzig pricing, Bland anti-cycling
//     fallback). It is the oracle the warm solvers are measured against.
//
//   - Incremental is a resolvable handle over the dense tableau for the
//     cutting-plane pattern: after an Optimal solve, newly appended
//     constraint rows are priced into the solved tableau and re-optimized
//     with dual simplex pivots from the previous optimal basis, skipping
//     phase 1 entirely (see NewIncremental). Every pivot touches the whole
//     tableau, which caps it at moderate sizes.
//
//   - Revised is the revised simplex with a maintained basis factorization,
//     the hot path for large masters (n >= 256 platforms): the basis is
//     split into logical singleton columns and a structural core factored
//     by a sparse left-looking LU (Gilbert-Peierls) with partial pivoting;
//     pivots run FTRAN/BTRAN through the factorization plus an eta file and
//     refactorize on update-count, growth and staleness triggers
//     (Options.RefactorInterval tunes the update-count trigger). Warm
//     re-solves after appends and objective changes are allocation-free in
//     steady state; numerical trouble falls back to the dense solvers (see
//     NewRevised and FactorStats).
//
// All solvers support cooperative cancellation through SolveContext; a
// canceled solve reports ErrCanceled and never leaves a reusable warm
// basis behind.
package lp
