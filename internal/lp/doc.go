// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize    c·x
//	subject to  a_i·x {<=, =, >=} b_i   for every constraint i
//	            x >= 0
//
// It replaces the Maple/MuPAD LP solver the paper uses to compute the
// optimal steady-state broadcast throughput (Section 4.1). The solver is
// deliberately simple (dense tableau, Dantzig pricing with a Bland
// anti-cycling fallback) but robust enough for the master problems produced
// by the cutting-plane decomposition in package steady (a few hundred
// variables, a few thousand constraints).
//
// Two entry points are provided. Solve performs a one-shot cold solve from
// the slack basis. Incremental is a resolvable handle for the cutting-plane
// pattern: after an Optimal solve, newly appended constraint rows are priced
// into the solved tableau and re-optimized with dual simplex pivots from the
// previous optimal basis, skipping phase 1 and the full primal
// re-optimization entirely (see NewIncremental).
package lp
