package lp

import (
	"math"
	"math/rand"
	"testing"
)

// coldOptimum solves a snapshot of the problem from scratch and returns the
// optimal objective (the differential oracle of the warm path).
func coldOptimum(t *testing.T, p *Problem) float64 {
	t.Helper()
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatalf("cold Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("cold Solve status = %v", sol.Status)
	}
	return sol.Objective
}

func TestIncrementalMatchesColdAfterEachBatch(t *testing.T) {
	// Random bounded LPs: maximize a non-negative objective under random LE
	// rows (feasible at the origin, bounded by per-variable box rows). After
	// every appended batch the warm re-solve must match a cold solve of the
	// very same problem.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		p := NewProblem(n)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = rng.Float64()
		}
		p.SetObjective(obj)
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddConstraint(row, LE, 1+rng.Float64()*9)
		}

		inc := NewIncremental(p, nil)
		for batch := 0; batch < 5; batch++ {
			sol, err := inc.Solve()
			if err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			if sol.Status != Optimal {
				t.Fatalf("trial %d batch %d: status %v", trial, batch, sol.Status)
			}
			want := coldOptimum(t, p)
			if math.Abs(sol.Objective-want) > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("trial %d batch %d: warm objective %v, cold %v", trial, batch, sol.Objective, want)
			}
			// Append 1-2 random cutting rows, some violated at the current
			// optimum, some slack.
			for k := 0; k < 1+rng.Intn(2); k++ {
				row := make([]float64, n)
				var lhs float64
				for j := range row {
					row[j] = rng.Float64()
					lhs += row[j] * sol.X[j]
				}
				rhs := lhs * (0.5 + rng.Float64()) // cuts off the optimum half the time
				inc.AddConstraint(row, LE, rhs)
			}
		}
		st := inc.Stats()
		if st.ColdSolves < 1 || st.ColdSolves+st.WarmSolves < 5 {
			t.Fatalf("trial %d: stats %+v inconsistent with 5 Solve calls", trial, st)
		}
	}
}

func TestIncrementalWarmStartsAfterFirstSolve(t *testing.T) {
	// A cutting-plane-shaped problem: maximize tp under tp <= x0 + x1 style
	// rows. The second solve must be warm and cheap.
	p := NewProblem(3) // x0, x1, tp
	p.SetObjectiveCoeff(2, 1)
	p.AddConstraint([]float64{1, 0, 0}, LE, 4)
	p.AddConstraint([]float64{0, 1, 0}, LE, 2)
	p.AddConstraint([]float64{-1, -1, 1}, LE, 0) // tp <= x0 + x1

	inc := NewIncremental(p, nil)
	sol, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-6) > 1e-9 {
		t.Fatalf("first solve: %+v", sol)
	}
	if inc.LastWarm() {
		t.Fatal("first solve claims to be warm")
	}

	// A cut that does not bind: zero pivots, still optimal.
	inc.AddConstraint([]float64{0, 0, 1}, LE, 100)
	sol, err = inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !inc.LastWarm() || sol.Status != Optimal || sol.Iterations != 0 {
		t.Fatalf("non-binding cut: warm=%v status=%v iterations=%d", inc.LastWarm(), sol.Status, sol.Iterations)
	}
	if math.Abs(sol.Objective-6) > 1e-9 {
		t.Fatalf("objective moved to %v", sol.Objective)
	}

	// A violated cut: dual pivots re-optimize from the old basis.
	inc.AddConstraint([]float64{0, 0, 1}, LE, 5)
	sol, err = inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !inc.LastWarm() || sol.Status != Optimal {
		t.Fatalf("violated cut: warm=%v status=%v", inc.LastWarm(), sol.Status)
	}
	if math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("objective = %v, want 5", sol.Objective)
	}
	st := inc.Stats()
	if st.ColdSolves != 1 || st.WarmSolves != 2 {
		t.Fatalf("stats = %+v, want 1 cold / 2 warm", st)
	}
}

func TestIncrementalGEAndEQRowsWarm(t *testing.T) {
	// maximize x+y, x<=3, y<=4 -> 7; then x >= ... and x == ... rows appended
	// warm must match cold solves of the same growing problem.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, 0}, LE, 3)
	p.AddConstraint([]float64{0, 1}, LE, 4)
	inc := NewIncremental(p, nil)
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}

	inc.AddConstraint([]float64{1, 1}, GE, 2) // slack at the optimum
	sol, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-7) > 1e-9 {
		t.Fatalf("after GE: %+v", sol)
	}

	inc.AddSparseConstraint([]Term{{Var: 0, Coeff: 1}}, EQ, 1) // binds x to 1
	sol, err = inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("after EQ: %+v", sol)
	}
	if math.Abs(sol.X[0]-1) > 1e-9 {
		t.Fatalf("x = %v, want 1", sol.X[0])
	}
	if want := coldOptimum(t, p); math.Abs(sol.Objective-want) > 1e-9 {
		t.Fatalf("warm %v vs cold %v", sol.Objective, want)
	}
}

func TestIncrementalDetectsInfeasibleCut(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, 0}, LE, 3)
	p.AddConstraint([]float64{0, 1}, LE, 4)
	inc := NewIncremental(p, nil)
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	// x + y <= -1 is unsatisfiable for x, y >= 0.
	inc.AddConstraint([]float64{1, 1}, LE, -1)
	sol, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	if sol.Feasible {
		t.Fatal("infeasible solution marked feasible")
	}
}

func TestIncrementalPicksUpDirectProblemGrowth(t *testing.T) {
	// Rows added directly on the underlying Problem (not via the handle)
	// must be picked up by the next Solve.
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, LE, 10)
	inc := NewIncremental(p, nil)
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]float64{1}, LE, 4)
	sol, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-9 {
		t.Fatalf("direct growth ignored: %+v", sol)
	}
}

func TestIncrementalObjectiveChangeForcesColdResolve(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 0})
	p.AddConstraint([]float64{1, 0}, LE, 3)
	p.AddConstraint([]float64{0, 1}, LE, 4)
	inc := NewIncremental(p, nil)
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	// Mutating the objective behind the handle's back must not return a
	// stale basis priced with the old costs.
	p.SetObjective([]float64{0, 1})
	sol, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if inc.LastWarm() {
		t.Fatal("solve after an objective change claims to be warm")
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-9 {
		t.Fatalf("objective change ignored: %+v", sol)
	}
	// And warm solving resumes afterwards.
	inc.AddConstraint([]float64{0, 1}, LE, 2)
	sol, err = inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !inc.LastWarm() || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("warm restart did not resume: warm=%v %+v", inc.LastWarm(), sol)
	}
}

func TestIncrementalNilProblem(t *testing.T) {
	inc := NewIncremental(nil, nil)
	if _, err := inc.Solve(); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestIncrementalFallsBackAndDisablesWarmAfterFailures(t *testing.T) {
	// With a 1-pivot budget the warm attempts can never complete; the handle
	// must fall back to cold and, after maxWarmFailures consecutive
	// failures, stop attempting warm re-solves altogether.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, 0}, LE, 3)
	p.AddConstraint([]float64{0, 1}, LE, 4)
	inc := NewIncremental(p, nil)
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	// Replace the options with a crippling budget and pre-load the failure
	// counter so the next failed warm attempt trips the latch. Two violated
	// cuts need at least two dual pivots, so a 1-pivot budget cannot
	// complete the warm re-solve.
	inc.opts = &Options{MaxIterations: 1}
	inc.failures = maxWarmFailures - 1
	inc.AddConstraint([]float64{1, 0}, LE, 1) // violated at (3, 4)
	inc.AddConstraint([]float64{0, 1}, LE, 2) // violated on an independent variable
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if st.WarmSolves != 1 || st.ColdSolves != 2 {
		t.Fatalf("stats %+v, want 1 warm attempt and 2 cold solves (initial + fallback)", st)
	}
	if !inc.noWarm {
		t.Fatal("warm restarts still enabled after maxWarmFailures consecutive failures")
	}
	// Subsequent solves must not attempt warm restarts any more.
	inc.opts = nil
	inc.AddConstraint([]float64{1, 1}, LE, 5)
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	if st := inc.Stats(); st.WarmSolves != 1 || inc.lastWarm {
		t.Fatalf("warm attempted after being disabled: %+v", st)
	}
}

// TestIncrementalProblemAccessor covers the trivial accessor.
func TestIncrementalProblemAccessor(t *testing.T) {
	p := NewProblem(1)
	if NewIncremental(p, nil).Problem() != p {
		t.Fatal("Problem() does not return the underlying problem")
	}
}
