package lp

import (
	"context"
	"math"
)

// Revised is a revised-simplex solver handle with the same contract as
// Incremental — solve, append rows, warm re-solve — but a fundamentally
// different per-pivot cost model. Where the dense tableau rewrites every row
// and column on each pivot (O(m·(n+m)) per pivot), Revised keeps the
// constraint matrix in sparse column form and maintains only a factorization
// of the basis: a dense LU of the small structural core (see factor.go) plus
// a product-form eta file of recent pivots. Each pivot then costs two
// factorization solves (FTRAN/BTRAN, O(k²) dense work for a core of k
// structural basics) plus one sweep over the sparse columns for pricing —
// on the cutting-plane masters of package steady, where most basic columns
// are slacks, this is the difference between sweeps capped near n=96 and
// sweeps that complete at n=1024.
//
// The factorization is refactorized from scratch on two triggers: an
// update-count trigger (etaLimit pivots since the last refactorization) and
// a growth trigger (a transformed pivot element too small relative to its
// column, the classic symptom of a stale eta chain). Refactorization also
// recomputes the basic values x_B = B⁻¹b directly from the problem data,
// so roundoff cannot accumulate across pivots; every Optimal verdict is
// additionally certified against the original columns (‖b − B·x_B‖ bounded)
// before it is returned.
//
// Appended rows are stored sparsely and priced into the warm basis exactly
// as Incremental does (GE rows negated, EQ rows split into paired LE rows);
// the re-solve then runs dual simplex from the previous optimal basis. A
// warm attempt that stalls falls back to a cold revised solve, and a cold
// revised solve that fails numerically falls back to the dense tableau
// (solveWithTableau) — the dense solver remains both the differential oracle
// and the fallback of last resort. All scratch vectors and the eta file are
// arena-backed and reused across solves, so steady-state warm pivoting does
// not allocate.
type Revised struct {
	p    *Problem
	opts *Options
	tol  float64

	// Normalized matrix state. Structural columns are stored sparsely;
	// logical columns (slack/surplus/artificial) are implicit signed unit
	// vectors described by logRow/logSign/logArt. Cold solves rebuild this
	// state from the Problem (flipping negative-RHS rows exactly as
	// newTableau does); warm solves extend it row by row without flipping.
	m       int // rows
	nStruct int // structural columns (decision variables)
	cols    []revCol
	rhs     []float64
	rowSign []float64
	logRow  []int32
	logSign []float64
	logArt  []bool
	artIDs  []int // column ids of artificial columns
	numArt  int

	basis  []int   // position -> basic column id
	posOf  []int32 // column id -> position, -1 when nonbasic
	banned []bool
	xB     []float64 // basic values per position
	cB     []float64 // basic costs per position under the current phase

	fs     factorState
	etas   etaFile
	phase1 bool // current costing (phase 1 prices artificials at -1)

	// Arena-backed scratch, grown on demand and reused across solves.
	colScratch []float64 // dense entering column (rows)
	wScratch   []float64 // FTRAN result (positions)
	accScratch []float64 // FTRAN singleton accumulator (rows)
	yScratch   []float64 // BTRAN result (rows)
	rhoScratch []float64 // BTRAN unit-row result (rows)
	btScratch  []float64 // BTRAN eta workspace (positions)
	unitPos    []float64 // unit position vector for btranUnit
	coreRHS    []float64 // core solve workspace (k)
	resScratch []float64 // certification residual (rows)
	d          []float64 // reduced costs per column
	alpha      []float64 // dual pivot row per column

	built    bool // factorized state matches the problem and may warm-start
	status   Status
	synced   int // prefix of p.constraints reflected in the matrix
	objSnap  []float64
	lastWarm bool
	failures int
	noWarm   bool

	stats  IncrementalStats
	fstats FactorStats
}

// revCol is one sparse structural column, entries in ascending row order.
type revCol struct {
	rows []int32
	vals []float64
}

func (c *revCol) add(row int, v float64) {
	c.rows = append(c.rows, int32(row))
	c.vals = append(c.vals, v)
}

// FactorStats counts the factorization work done by a Revised handle.
type FactorStats struct {
	// Refactors is the number of basis refactorizations (from both the
	// update-count and the growth trigger, plus one per solve and one per
	// warm row-append batch).
	Refactors int
	// MaxEtaChain is the longest eta chain observed between
	// refactorizations; it is bounded by etaLimit.
	MaxEtaChain int
	// DenseFallbacks counts the solves that fell back to the dense tableau
	// after the revised path failed numerically.
	DenseFallbacks int
}

// statusNumerical is the internal verdict of an iteration that hit numerical
// trouble the factorization could not recover from (singular refactorized
// basis, unstable pivot after a fresh refactorization). It never escapes the
// handle: SolveContext converts it into a cold re-solve or a dense fallback.
const statusNumerical Status = -1

// NewRevised returns a revised-simplex handle over the problem. The problem
// may already contain constraints; nothing is solved until Solve is called.
// The dense solvers (Solve, Incremental) remain exact differential oracles:
// both paths report objectives within standard simplex tolerances of each
// other on any feasible bounded problem.
func NewRevised(p *Problem, opts *Options) *Revised {
	tol := 1e-9
	if opts != nil && opts.Tolerance > 0 {
		tol = opts.Tolerance
	}
	return &Revised{p: p, opts: opts, tol: tol, synced: -1}
}

// Problem returns the underlying problem (shared with the handle).
func (rv *Revised) Problem() *Problem { return rv.p }

// Stats returns the cumulative warm/cold solve and pivot counters.
func (rv *Revised) Stats() IncrementalStats { return rv.stats }

// FactorStats returns the cumulative factorization counters.
func (rv *Revised) FactorStats() FactorStats { return rv.fstats }

// LastWarm reports whether the most recent Solve reused the previous basis.
func (rv *Revised) LastWarm() bool { return rv.lastWarm }

// AddConstraint appends a dense constraint row (see Problem.AddConstraint).
func (rv *Revised) AddConstraint(coeffs []float64, rel Relation, rhs float64) {
	rv.p.AddConstraint(coeffs, rel, rhs)
}

// AddSparseConstraint appends a sparse constraint row (see
// Problem.AddSparseConstraint).
func (rv *Revised) AddSparseConstraint(terms []Term, rel Relation, rhs float64) {
	rv.p.AddSparseConstraint(terms, rel, rhs)
}

// Solve re-optimizes the problem over all constraints added so far; see
// SolveContext.
func (rv *Revised) Solve() (*Solution, error) {
	return rv.SolveContext(context.Background())
}

// SolveContext solves with cooperative cancellation, mirroring
// Incremental.SolveContext: the first call (and any call after a non-Optimal
// solve) solves cold from the slack basis; later calls append the new rows
// and re-optimize warm with dual simplex from the previous optimal basis.
// Unlike Incremental, a changed objective does not force a cold re-solve on
// its own — the revised form reprices every pivot from the basis
// factorization, so the previous basis stays warm under primal simplex. A
// canceled solve leaves the handle consistent but cold: the mid-pivot
// factorization is discarded and never seeds a warm start, and the
// cancellation does not count toward the warm-failure limit.
func (rv *Revised) SolveContext(ctx context.Context) (*Solution, error) {
	if rv.p == nil || rv.p.numVars == 0 {
		return nil, ErrBadProblem
	}
	var warmSpent int
	if rv.built && rv.status == Optimal && !rv.noWarm {
		sol := rv.warmSolve(ctx)
		rv.stats.WarmSolves++
		rv.stats.WarmPivots += sol.Iterations
		if sol.Status == Optimal {
			rv.lastWarm = true
			rv.failures = 0
			return sol, nil
		}
		if sol.Status == Canceled {
			rv.invalidate()
			return nil, canceledErr(ctx)
		}
		// The warm attempt stalled or hit numerical trouble: discard the
		// factorized state and re-solve cold.
		warmSpent = sol.Iterations
		rv.invalidate()
		rv.failures++
		if rv.failures >= maxWarmFailures {
			rv.noWarm = true
		}
	}
	sol, err := rv.coldSolve(ctx)
	if err != nil {
		rv.invalidate()
		return nil, err
	}
	if sol == nil {
		// The revised path failed numerically: fall back to the dense
		// tableau, the oracle of last resort.
		rv.fstats.DenseFallbacks++
		rv.invalidate()
		sol, _, err = solveWithTableau(ctx, rv.p, rv.opts)
		if err != nil {
			return nil, err
		}
		rv.status = sol.Status
	}
	rv.stats.ColdSolves++
	rv.stats.ColdPivots += sol.Iterations
	rv.lastWarm = false
	sol.Iterations += warmSpent
	return sol, nil
}

// invalidate drops the factorized state so the next solve runs cold. Slab
// capacity is kept.
func (rv *Revised) invalidate() {
	rv.built = false
	rv.fs.valid = false
}

func (rv *Revised) numCols() int { return rv.nStruct + len(rv.logRow) }

// etaTrigger is the update-count refactorization trigger: the eta-file
// length at which the factorization is rebuilt (Options.RefactorInterval,
// or etaLimit by default). FactorStats.MaxEtaChain is bounded by it.
func (rv *Revised) etaTrigger() int {
	if rv.opts != nil && rv.opts.RefactorInterval > 0 {
		return rv.opts.RefactorInterval
	}
	return etaLimit
}

func (rv *Revised) maxIterations() int {
	if rv.opts != nil && rv.opts.MaxIterations > 0 {
		return rv.opts.MaxIterations
	}
	return 50 * (rv.m + rv.numCols())
}

// ---- matrix construction ----

// addLogical creates a new logical column (±e_row) and returns its id.
func (rv *Revised) addLogical(row int, sign float64, art bool) int {
	id := rv.nStruct + len(rv.logRow)
	rv.logRow = append(rv.logRow, int32(row))
	rv.logSign = append(rv.logSign, sign)
	rv.logArt = append(rv.logArt, art)
	if art {
		rv.artIDs = append(rv.artIDs, id)
	}
	return id
}

// build constructs the normalized matrix and the initial logical basis from
// the problem, exactly mirroring newTableau: rows with negative right-hand
// sides are flipped, LE rows get a basic slack, GE rows a surplus plus a
// basic artificial, EQ rows a basic artificial.
func (rv *Revised) build() {
	n := rv.p.numVars
	rv.nStruct = n
	if cap(rv.cols) < n {
		rv.cols = make([]revCol, n)
	}
	rv.cols = rv.cols[:n]
	for j := range rv.cols {
		rv.cols[j].rows = rv.cols[j].rows[:0]
		rv.cols[j].vals = rv.cols[j].vals[:0]
	}
	m := len(rv.p.constraints)
	rv.m = m
	rv.rhs = append(rv.rhs[:0], make([]float64, m)...)
	rv.rowSign = append(rv.rowSign[:0], make([]float64, m)...)
	rv.logRow = rv.logRow[:0]
	rv.logSign = rv.logSign[:0]
	rv.logArt = rv.logArt[:0]
	rv.artIDs = rv.artIDs[:0]
	rv.basis = append(rv.basis[:0], make([]int, m)...)

	for i, c := range rv.p.constraints {
		rel, b, sign := c.rel, c.rhs, 1.0
		if b < 0 {
			sign, b = -1, -b
			rel = flip(rel)
		}
		rv.rowSign[i] = sign
		rv.rhs[i] = b
		for j, v := range c.coeffs {
			if v != 0 {
				rv.cols[j].add(i, sign*v)
			}
		}
		switch rel {
		case LE:
			rv.basis[i] = rv.addLogical(i, 1, false)
		case GE:
			rv.addLogical(i, -1, false)
			rv.basis[i] = rv.addLogical(i, 1, true)
		case EQ:
			rv.basis[i] = rv.addLogical(i, 1, true)
		}
	}
	rv.numArt = len(rv.artIDs)
	rv.synced = m
	rv.finishBasis()
}

// appendRow extends the matrix with one LE row (negated when negate is set),
// its slack basic in the new position. The basic value is recomputed by the
// refactorization that must follow an append batch.
func (rv *Revised) appendRow(coeffs []float64, b float64, negate bool) {
	i := rv.m
	rv.m++
	sign := 1.0
	if negate {
		sign = -1
	}
	rv.rhs = append(rv.rhs, sign*b)
	rv.rowSign = append(rv.rowSign, 1)
	for j, v := range coeffs {
		if v != 0 {
			rv.cols[j].add(i, sign*v)
		}
	}
	slack := rv.addLogical(i, 1, false)
	rv.basis = append(rv.basis, slack)
	rv.posOf = append(rv.posOf, int32(i))
	rv.banned = append(rv.banned, false)
	rv.xB = append(rv.xB, 0)
	rv.cB = append(rv.cB, 0)
}

// finishBasis rebuilds posOf/banned/xB/cB after a cold build.
func (rv *Revised) finishBasis() {
	nc := rv.numCols()
	rv.posOf = append(rv.posOf[:0], make([]int32, nc)...)
	for j := range rv.posOf {
		rv.posOf[j] = -1
	}
	rv.banned = append(rv.banned[:0], make([]bool, nc)...)
	for i, col := range rv.basis {
		rv.posOf[col] = int32(i)
	}
	rv.xB = append(rv.xB[:0], rv.rhs...)
	rv.cB = append(rv.cB[:0], make([]float64, rv.m)...)
	rv.resetCosts()
}

// colCost returns the objective coefficient of a column under the current
// phase: the real objective for structural columns in phase 2, −1 for
// artificials in phase 1, zero otherwise.
func (rv *Revised) colCost(j int) float64 {
	if j < rv.nStruct {
		if rv.phase1 {
			return 0
		}
		return rv.p.objective[j]
	}
	if rv.phase1 && rv.logArt[j-rv.nStruct] {
		return -1
	}
	return 0
}

// resetCosts recomputes the basic-cost vector under the current phase.
func (rv *Revised) resetCosts() {
	for i, col := range rv.basis {
		rv.cB[i] = rv.colCost(col)
	}
}

func (rv *Revised) objValue() float64 {
	var s float64
	for i, c := range rv.cB[:rv.m] {
		if c != 0 {
			s += c * rv.xB[i]
		}
	}
	return s
}

// ---- factorization plumbing ----

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// ensureScratch sizes the arena-backed scratch for the current matrix.
func (rv *Revised) ensureScratch() {
	m, nc := rv.m, rv.numCols()
	rv.colScratch = grow(rv.colScratch, m)
	rv.wScratch = grow(rv.wScratch, m)
	rv.accScratch = grow(rv.accScratch, m)
	rv.yScratch = grow(rv.yScratch, m)
	rv.rhoScratch = grow(rv.rhoScratch, m)
	rv.btScratch = grow(rv.btScratch, m)
	rv.unitPos = grow(rv.unitPos, m)
	rv.resScratch = grow(rv.resScratch, m)
	rv.d = grow(rv.d, nc)
	rv.alpha = grow(rv.alpha, nc)
}

// refactor rebuilds the singleton/core split and the dense core LU from the
// current basis, clears the eta file and recomputes x_B = B⁻¹b from the
// problem data. It reports false when the basis is numerically singular.
func (rv *Revised) refactor() bool {
	rv.ensureScratch()
	fs := &rv.fs
	m := rv.m
	fs.ensure(m)
	for r := 0; r < m; r++ {
		fs.rowCore[r] = -2 // uncovered
	}
	fs.corePos = fs.corePos[:0]
	fs.coreCol = fs.coreCol[:0]
	nCore := 0
	for pos, col := range rv.basis {
		if col >= rv.nStruct {
			l := col - rv.nStruct
			r := rv.logRow[l]
			if fs.rowCore[r] != -2 {
				return false // two singletons cover the same row: singular
			}
			fs.rowCore[r] = -1 // covered
			fs.singRow[pos] = r
			fs.singInv[pos] = rv.logSign[l] // sign ∈ {+1,−1}, its own inverse
		} else {
			fs.corePos = append(fs.corePos, int32(pos))
			fs.coreCol = append(fs.coreCol, int32(col))
			fs.singRow[pos] = -1
			fs.singInv[pos] = 0
			nCore++
		}
	}
	fs.coreRow = fs.coreRow[:0]
	for r := 0; r < m; r++ {
		if fs.rowCore[r] == -2 {
			fs.rowCore[r] = int32(len(fs.coreRow))
			fs.coreRow = append(fs.coreRow, int32(r))
		}
	}
	k := nCore
	if k != len(fs.coreRow) {
		return false
	}
	fs.k = k
	fs.ccp = append(fs.ccp[:0], 0)
	fs.cri = fs.cri[:0]
	fs.cvx = fs.cvx[:0]
	for _, colID := range fs.coreCol {
		col := &rv.cols[colID]
		for e, r := range col.rows {
			if t := fs.rowCore[r]; t >= 0 {
				fs.cri = append(fs.cri, t)
				fs.cvx = append(fs.cvx, col.vals[e])
			}
		}
		fs.ccp = append(fs.ccp, int32(len(fs.cri)))
	}
	if !fs.slu.factor(fs.ccp, fs.cri, fs.cvx, k) {
		return false
	}
	rv.etas.reset()
	fs.valid = true
	rv.fstats.Refactors++
	rv.coreRHS = grow(rv.coreRHS, k)

	// Recompute x_B = B⁻¹b from scratch: kills accumulated roundoff and
	// prices freshly appended rows into the basis in one step.
	copy(rv.colScratch, rv.rhs)
	rv.ftran(rv.colScratch, rv.xB[:m])
	for i, v := range rv.xB[:m] {
		if v < 0 && v > -rv.tol {
			rv.xB[i] = 0
		}
	}
	rv.resetCosts()
	return true
}

// colAt reads core column t of the factorization snapshot. The snapshot's
// column ids are pinned at refactorization time (fs.coreCol): pivots since
// then are represented by the eta file, not by the factorized B₀, so FTRAN
// and BTRAN must keep solving against the old basis columns. The column
// contents themselves are stable — appends always refactorize immediately,
// and pivots never mutate stored columns.
func (rv *Revised) colAt(t int) *revCol { return &rv.cols[rv.fs.coreCol[t]] }

// ftran solves B·w = a (a indexed by rows, w by basis positions), through the
// factorized snapshot and then the eta file. a is clobbered.
func (rv *Revised) ftran(a, w []float64) {
	fs := &rv.fs
	k := fs.k
	z := rv.coreRHS[:k]
	for t, r := range fs.coreRow {
		z[t] = a[r]
	}
	fs.slu.solve(z)
	// Subtract the core columns' contributions at singleton-covered rows.
	for t := range fs.corePos {
		zt := z[t]
		if zt == 0 {
			continue
		}
		col := rv.colAt(t)
		for e, r := range col.rows {
			if fs.rowCore[r] < 0 {
				a[r] -= zt * col.vals[e]
			}
		}
	}
	for i := range w {
		w[i] = 0
	}
	for t, pos := range fs.corePos {
		w[pos] = z[t]
	}
	for pos := 0; pos < rv.m; pos++ {
		if r := fs.singRow[pos]; r >= 0 {
			w[pos] = a[r] * fs.singInv[pos]
		}
	}
	rv.etas.applyForward(w)
}

// btran solves yᵀ·B = cᵀ (c indexed by basis positions, y by rows): the eta
// file transposed in reverse order, then the factorized snapshot.
func (rv *Revised) btran(c, y []float64) {
	fs := &rv.fs
	v := rv.btScratch[:rv.m]
	copy(v, c)
	rv.etas.applyBackward(v)
	for r := range y {
		y[r] = 0
	}
	for pos := 0; pos < rv.m; pos++ {
		if r := fs.singRow[pos]; r >= 0 {
			y[r] = v[pos] * fs.singInv[pos]
		}
	}
	k := fs.k
	z := rv.coreRHS[:k]
	for t, pos := range fs.corePos {
		s := v[pos]
		col := rv.colAt(t)
		for e, r := range col.rows {
			if fs.rowCore[r] < 0 {
				s -= y[r] * col.vals[e]
			}
		}
		z[t] = s
	}
	fs.slu.solveT(z)
	for t, r := range fs.coreRow {
		y[r] = z[t]
	}
}

// btranUnit solves ρᵀ·B = e_posᵀ: row pos of the basis inverse.
func (rv *Revised) btranUnit(pos int, rho []float64) {
	u := rv.unitPos[:rv.m]
	for i := range u {
		u[i] = 0
	}
	u[pos] = 1
	rv.btran(u, rho)
}

// colDense scatters column j into the dense row-indexed scratch a.
func (rv *Revised) colDense(j int, a []float64) {
	for i := range a {
		a[i] = 0
	}
	if j < rv.nStruct {
		col := &rv.cols[j]
		for e, r := range col.rows {
			a[r] = col.vals[e]
		}
		return
	}
	l := j - rv.nStruct
	a[rv.logRow[l]] = rv.logSign[l]
}

// priceAll computes the reduced cost of every column against the dual vector
// y; basic columns price to exactly zero.
func (rv *Revised) priceAll(y []float64) {
	d := rv.d[:rv.numCols()]
	for j := 0; j < rv.nStruct; j++ {
		if rv.posOf[j] >= 0 {
			d[j] = 0
			continue
		}
		s := rv.colCost(j)
		col := &rv.cols[j]
		for e, r := range col.rows {
			s -= y[r] * col.vals[e]
		}
		d[j] = s
	}
	for l := range rv.logRow {
		j := rv.nStruct + l
		if rv.posOf[j] >= 0 {
			d[j] = 0
			continue
		}
		d[j] = rv.colCost(j) - y[rv.logRow[l]]*rv.logSign[l]
	}
}

// relTol mirrors tableau.relTol: comparison tolerance relative to |ref|.
func (rv *Revised) relTol(ref float64) float64 {
	if ref < 0 {
		ref = -ref
	}
	if math.IsInf(ref, 1) {
		return rv.tol
	}
	return rv.tol * (1 + ref)
}

// ---- pivoting ----

// pivot makes column enter basic in position leave, with w = B⁻¹·a_enter the
// transformed entering column. The update is x_B ← x_B − θ·w with
// θ = x_B[leave]/w[leave], plus one eta appended to the file.
func (rv *Revised) pivot(leave, enter int, w []float64) {
	theta := rv.xB[leave] / w[leave]
	xB := rv.xB[:rv.m]
	if theta != 0 {
		for i, wi := range w {
			if wi != 0 {
				xB[i] -= theta * wi
			}
		}
	}
	xB[leave] = theta
	for i, v := range xB {
		if v < 0 && v > -rv.tol {
			xB[i] = 0
		}
	}
	old := rv.basis[leave]
	rv.posOf[old] = -1
	rv.basis[leave] = enter
	rv.posOf[enter] = int32(leave)
	rv.cB[leave] = rv.colCost(enter)
	rv.etas.push(w, leave)
	if c := rv.etas.count(); c > rv.fstats.MaxEtaChain {
		rv.fstats.MaxEtaChain = c
	}
}

// stable reports whether the transformed pivot element is large enough
// relative to its column to commit; a failure signals a stale eta chain.
func stable(w []float64, leave int) bool {
	maxAbs := 0.0
	for _, v := range w {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	return math.Abs(w[leave]) > pivotGrowthTol*(1+maxAbs)
}

// chooseEntering mirrors tableau.chooseEntering: most positive reduced cost
// (Dantzig) or lowest-index positive (Bland), skipping banned columns.
func (rv *Revised) chooseEntering(bland bool) int {
	d := rv.d[:rv.numCols()]
	best := -1
	bestVal := rv.tol
	for j, dj := range d {
		if rv.banned[j] {
			continue
		}
		if dj > bestVal {
			if bland {
				return j
			}
			best = j
			bestVal = dj
		}
	}
	return best
}

// chooseLeaving mirrors tableau.chooseLeaving: minimum-ratio test over the
// transformed column with relative-tolerance ties broken by the smallest
// basic-column id.
func (rv *Revised) chooseLeaving(w []float64) int {
	best := -1
	bestRatio := 0.0
	for i := 0; i < rv.m; i++ {
		coef := w[i]
		if coef <= rv.tol {
			continue
		}
		ratio := rv.xB[i] / coef
		if best < 0 {
			best, bestRatio = i, ratio
			continue
		}
		eps := rv.relTol(bestRatio)
		switch {
		case ratio < bestRatio-eps:
			best, bestRatio = i, ratio
		case ratio <= bestRatio+eps && rv.basis[i] < rv.basis[best]:
			best = i
			if ratio < bestRatio {
				bestRatio = ratio
			}
		}
	}
	return best
}

// iterate runs primal revised-simplex pivots until optimality, unboundedness,
// the iteration limit or numerical failure, with the same Dantzig→Bland
// anti-cycling policy as tableau.iterate.
func (rv *Revised) iterate(ctx context.Context, maxIter int, counter *int, detectUnbounded bool) Status {
	stallLimit := 4 * (rv.m + 16)
	lastObjective := rv.objValue()
	stalled := 0
	useBland := false
	for {
		if *counter%cancelCheckInterval == 0 && pollCtx(ctx) {
			return Canceled
		}
		if !useBland {
			if obj := rv.objValue(); obj > lastObjective+rv.tol {
				lastObjective = obj
				stalled = 0
			} else {
				stalled++
				if stalled > stallLimit {
					useBland = true
				}
			}
		}
		y := rv.yScratch[:rv.m]
		rv.btran(rv.cB[:rv.m], y)
		rv.priceAll(y)
		enter := rv.chooseEntering(useBland)
		if enter < 0 {
			return Optimal
		}
		if *counter >= maxIter {
			return IterationLimit
		}
		w := rv.wScratch[:rv.m]
		rv.colDense(enter, rv.colScratch[:rv.m])
		rv.ftran(rv.colScratch[:rv.m], w)
		leave := rv.chooseLeaving(w)
		if leave < 0 {
			if detectUnbounded {
				return Unbounded
			}
			// Phase 1 is bounded above by zero; a missing ratio is a
			// numerical artifact. Treat as optimal, like the tableau.
			return Optimal
		}
		if !stable(w, leave) {
			// Growth trigger: refactorize and recompute the column through
			// the fresh factorization before committing.
			if rv.etas.count() == 0 || !rv.refactor() {
				return statusNumerical
			}
			rv.colDense(enter, rv.colScratch[:rv.m])
			rv.ftran(rv.colScratch[:rv.m], w)
			leave = rv.chooseLeaving(w)
			if leave < 0 {
				if detectUnbounded {
					return Unbounded
				}
				return Optimal
			}
			if !stable(w, leave) {
				return statusNumerical
			}
		}
		rv.pivot(leave, enter, w)
		*counter++
		if rv.etas.count() >= rv.etaTrigger() && !rv.refactor() {
			return statusNumerical
		}
	}
}

// infeasibility is the total primal infeasibility of the basic values.
func (rv *Revised) infeasibility() float64 {
	var s float64
	for _, v := range rv.xB[:rv.m] {
		if v < 0 {
			s -= v
		}
	}
	return s
}

// dualIterate restores primal feasibility with dual simplex pivots from a
// dual-feasible basis, mirroring tableau.dualIterate: leaving row by most
// negative basic value (Bland fallback on stall), entering column by the
// smallest dual ratio with largest-magnitude-pivot tie-breaking. Reduced
// costs are maintained incrementally from the pivot row and recomputed from
// the factorization at every refactorization.
func (rv *Revised) dualIterate(ctx context.Context, maxIter int, counter *int) Status {
	stallLimit := 4 * (rv.m + 16)
	lastInfeas := rv.infeasibility()
	stalled := 0
	useBland := false

	price := func() {
		y := rv.yScratch[:rv.m]
		rv.btran(rv.cB[:rv.m], y)
		rv.priceAll(y)
	}
	price()
	nc := rv.numCols()
	for {
		if *counter%cancelCheckInterval == 0 && pollCtx(ctx) {
			return Canceled
		}
		leave := -1
		if useBland {
			for i := 0; i < rv.m; i++ {
				if rv.xB[i] < -rv.tol && (leave < 0 || rv.basis[i] < rv.basis[leave]) {
					leave = i
				}
			}
		} else {
			worst := -rv.tol
			for i := 0; i < rv.m; i++ {
				if rv.xB[i] < worst {
					worst = rv.xB[i]
					leave = i
				}
			}
		}
		if leave < 0 {
			return Optimal
		}
		if *counter >= maxIter {
			return IterationLimit
		}
		rho := rv.rhoScratch[:rv.m]
		rv.btranUnit(leave, rho)
		// Pivot row: α_j = ρ·a_j over the nonbasic, non-banned columns.
		alpha := rv.alpha[:nc]
		d := rv.d[:nc]
		enter := -1
		bestRatio := 0.0
		for j := 0; j < nc; j++ {
			if rv.banned[j] || rv.posOf[j] >= 0 {
				alpha[j] = 0
				continue
			}
			var a float64
			if j < rv.nStruct {
				col := &rv.cols[j]
				for e, r := range col.rows {
					a += rho[r] * col.vals[e]
				}
			} else {
				l := j - rv.nStruct
				a = rho[rv.logRow[l]] * rv.logSign[l]
			}
			alpha[j] = a
			if a >= -rv.tol {
				continue
			}
			ratio := d[j] / a
			eps := rv.relTol(bestRatio)
			switch {
			case enter < 0 || ratio < bestRatio-eps:
				enter, bestRatio = j, ratio
			case !useBland && ratio <= bestRatio+eps && a < alpha[enter]:
				enter = j
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
		if enter < 0 {
			return Infeasible
		}
		w := rv.wScratch[:rv.m]
		rv.colDense(enter, rv.colScratch[:rv.m])
		rv.ftran(rv.colScratch[:rv.m], w)
		// w[leave] and α_enter are the same number computed through two
		// different solves; disagreement (or a sign flip) means the eta
		// chain has gone stale — refactorize and retry the iteration.
		if w[leave] >= -rv.tol || math.Abs(w[leave]-alpha[enter]) > 1e-7*(1+math.Abs(alpha[enter])) {
			if rv.etas.count() == 0 || !rv.refactor() {
				return statusNumerical
			}
			price()
			continue
		}
		rate := d[enter] / alpha[enter]
		old := rv.basis[leave]
		rv.pivot(leave, enter, w)
		*counter++
		// Reduced-cost update from the pivot row: d_j ← d_j − rate·α_j; the
		// leaving column re-enters the nonbasic set with α = 1.
		if rate != 0 {
			for j := 0; j < nc; j++ {
				if a := alpha[j]; a != 0 {
					d[j] -= rate * a
				}
			}
		}
		d[old] = -rate
		d[enter] = 0
		if rv.etas.count() >= rv.etaTrigger() {
			if !rv.refactor() {
				return statusNumerical
			}
			price()
		}
		if !useBland {
			if s := rv.infeasibility(); s < lastInfeas-rv.tol {
				lastInfeas = s
				stalled = 0
			} else {
				stalled++
				if stalled > stallLimit {
					useBland = true
				}
			}
		}
	}
}

// ---- solve drivers ----

// banArtificials bans artificial columns from entering (phase 2) and pivots
// still-basic artificials out where a non-banned column with a usable
// transformed coefficient exists; redundant rows keep their artificial basic
// at level zero, exactly like tableau.forbidArtificials.
func (rv *Revised) banArtificials() bool {
	for _, j := range rv.artIDs {
		rv.banned[j] = true
	}
	nc := rv.numCols()
	for pos := 0; pos < rv.m; pos++ {
		col := rv.basis[pos]
		if col < rv.nStruct || !rv.logArt[col-rv.nStruct] {
			continue
		}
		rho := rv.rhoScratch[:rv.m]
		rv.btranUnit(pos, rho)
		for j := 0; j < nc; j++ {
			if rv.banned[j] || rv.posOf[j] >= 0 {
				continue
			}
			var a float64
			if j < rv.nStruct {
				c := &rv.cols[j]
				for e, r := range c.rows {
					a += rho[r] * c.vals[e]
				}
			} else {
				l := j - rv.nStruct
				a = rho[rv.logRow[l]] * rv.logSign[l]
			}
			if math.Abs(a) <= rv.tol {
				continue
			}
			w := rv.wScratch[:rv.m]
			rv.colDense(j, rv.colScratch[:rv.m])
			rv.ftran(rv.colScratch[:rv.m], w)
			if math.Abs(w[pos]) <= rv.tol || !stable(w, pos) {
				continue
			}
			rv.pivot(pos, j, w)
			if rv.etas.count() >= rv.etaTrigger() && !rv.refactor() {
				return false
			}
			break
		}
	}
	return true
}

// certify verifies the Optimal verdict against the original column data:
// the residual ‖b − B·x_B‖∞ must stay within tolerance of the row scale.
// A stale eta chain gets one refactorization (which recomputes x_B) before
// the verdict is rejected.
func (rv *Revised) certify() bool {
	for attempt := 0; ; attempt++ {
		res := rv.resScratch[:rv.m]
		copy(res, rv.rhs)
		scale := 1.0
		for _, b := range rv.rhs {
			if b > scale {
				scale = b
			} else if -b > scale {
				scale = -b
			}
		}
		for pos := 0; pos < rv.m; pos++ {
			v := rv.xB[pos]
			if v == 0 {
				continue
			}
			col := rv.basis[pos]
			if col < rv.nStruct {
				c := &rv.cols[col]
				for e, r := range c.rows {
					res[r] -= v * c.vals[e]
				}
			} else {
				l := col - rv.nStruct
				res[rv.logRow[l]] -= v * rv.logSign[l]
			}
		}
		worst := 0.0
		for _, r := range res {
			if r < 0 {
				r = -r
			}
			if r > worst {
				worst = r
			}
		}
		if worst <= 1e-7*scale {
			return true
		}
		if attempt > 0 || rv.etas.count() == 0 || !rv.refactor() {
			return false
		}
	}
}

// extract writes the structural variable values into x.
func (rv *Revised) extract(x []float64) {
	for j := range x {
		x[j] = 0
	}
	for pos, col := range rv.basis {
		if col < rv.nStruct {
			v := rv.xB[pos]
			if v < 0 && v > -rv.tol {
				v = 0
			}
			x[col] = v
		}
	}
}

// duals returns the simplex multipliers with respect to the constraints as
// given (valid only on a cold-built optimal basis, where the normalized rows
// are in one-to-one signed correspondence with the problem's constraints).
func (rv *Revised) duals() []float64 {
	y := rv.yScratch[:rv.m]
	rv.btran(rv.cB[:rv.m], y)
	out := make([]float64, rv.m)
	for i := 0; i < rv.m; i++ {
		out[i] = y[i] * rv.rowSign[i]
	}
	return out
}

// coldSolve runs the two-phase revised simplex from the slack/artificial
// basis. It returns (nil, nil) on numerical failure, signalling SolveContext
// to fall back to the dense tableau.
func (rv *Revised) coldSolve(ctx context.Context) (*Solution, error) {
	if len(rv.p.constraints) == 0 {
		// No rows: decided without a basis, exactly like solveWithTableau.
		sol, _, err := solveWithTableau(ctx, rv.p, rv.opts)
		rv.invalidate()
		if err == nil {
			rv.status = sol.Status
		}
		return sol, err
	}
	rv.phase1 = false
	rv.build()
	rv.phase1 = rv.numArt > 0
	rv.resetCosts()
	if !rv.refactor() {
		return nil, nil
	}
	maxIter := rv.maxIterations()
	sol := &Solution{X: make([]float64, rv.p.numVars)}
	counter := 0
	if rv.numArt > 0 {
		sol.Phase = 1
		st := rv.iterate(ctx, maxIter, &counter, false)
		sol.Iterations = counter
		switch {
		case st == Canceled:
			return nil, canceledErr(ctx)
		case st == statusNumerical:
			return nil, nil
		case st == IterationLimit:
			sol.Status = IterationLimit
			rv.status = IterationLimit
			return sol, nil
		}
		if rv.objValue() < -1e-7 {
			sol.Status = Infeasible
			rv.status = Infeasible
			return sol, nil
		}
		if !rv.banArtificials() {
			return nil, nil
		}
	}
	sol.Phase = 2
	rv.phase1 = false
	rv.resetCosts()
	st := rv.iterate(ctx, maxIter, &counter, true)
	sol.Iterations = counter
	switch {
	case st == Canceled:
		return nil, canceledErr(ctx)
	case st == statusNumerical:
		return nil, nil
	}
	sol.Status = st
	rv.status = st
	if st == Unbounded {
		return sol, nil
	}
	if st == Optimal && !rv.certify() {
		return nil, nil
	}
	rv.extract(sol.X)
	sol.Objective = dot(rv.p.objective, sol.X)
	sol.Feasible = true
	if st == Optimal {
		sol.Dual = rv.duals()
		rv.built = true
		rv.objSnap = append(rv.objSnap[:0], rv.p.objective...)
	}
	return sol, nil
}

// objectiveUnchanged reports whether the objective still matches the
// snapshot of the last optimal solve.
func (rv *Revised) objectiveUnchanged() bool {
	if len(rv.objSnap) != len(rv.p.objective) {
		return false
	}
	for i, v := range rv.p.objective {
		if rv.objSnap[i] != v {
			return false
		}
	}
	return true
}

// warmSolve extends the matrix with the not-yet-synced rows, refactorizes
// (the appended slacks join the basis as singletons, and the refactorization
// prices the new rows into x_B), then re-optimizes: dual simplex to restore
// primal feasibility, primal simplex to polish. A changed objective alone
// skips the dual phase — the previous basis is still primal feasible, and
// the revised form reprices it for free.
func (rv *Revised) warmSolve(ctx context.Context) *Solution {
	sol := &Solution{X: make([]float64, rv.p.numVars), Phase: 2}
	objChanged := !rv.objectiveUnchanged()
	appended := 0
	for _, c := range rv.p.constraints[rv.synced:] {
		switch c.rel {
		case LE:
			rv.appendRow(c.coeffs, c.rhs, false)
			appended++
		case GE:
			rv.appendRow(c.coeffs, c.rhs, true)
			appended++
		case EQ:
			rv.appendRow(c.coeffs, c.rhs, false)
			rv.appendRow(c.coeffs, c.rhs, true)
			appended += 2
		}
	}
	rv.synced = len(rv.p.constraints)
	rv.phase1 = false
	if !rv.refactor() {
		sol.Status = IterationLimit // treated as a warm failure by SolveContext
		rv.status = IterationLimit
		return sol
	}
	maxIter := rv.maxIterations()
	if budget := 2*rv.m + 32*appended + 128; budget < maxIter && !objChanged {
		// A healthy warm re-solve needs a handful of pivots per appended
		// row; a stalling one should bail to the cold fallback early.
		maxIter = budget
	}
	counter := 0
	st := Optimal
	if appended > 0 {
		st = rv.dualIterate(ctx, maxIter, &counter)
	}
	if st == Optimal {
		st = rv.iterate(ctx, maxIter, &counter, true)
	}
	sol.Iterations = counter
	if st == statusNumerical {
		st = IterationLimit
	}
	sol.Status = st
	rv.status = st
	if st == Optimal {
		if !rv.certify() {
			sol.Status = IterationLimit
			rv.status = IterationLimit
			return sol
		}
		rv.extract(sol.X)
		sol.Objective = dot(rv.p.objective, sol.X)
		sol.Feasible = true
		rv.objSnap = append(rv.objSnap[:0], rv.p.objective...)
	}
	return sol
}
