package lp

import "context"

// Incremental is a resolvable solver handle for the cutting-plane pattern:
// solve a problem once, then repeatedly append constraint rows and re-solve.
// After an Optimal solve, rows added since the previous Solve are priced into
// the solved tableau (appendRowLE) and re-optimized with dual simplex pivots
// from the previous optimal basis: rows that do not cut off the old optimum
// cost zero pivots, and rows that do — cutting planes such as the
// TP − Σ n_e ≤ ε rows of package steady — are dual feasible at the old
// basis, so the warm re-solve skips phase 1 and the full primal
// re-optimization entirely.
//
// Constraints may be added through the handle (AddConstraint,
// AddSparseConstraint) or directly on the underlying Problem — both are
// picked up at the next Solve, and the Problem always holds the complete row
// set, so a cold lp.Solve of the same Problem remains an exact differential
// oracle for the warm path. GE and EQ rows are warm-started too (internally
// as negated and paired LE rows). Changing the objective between solves
// invalidates the priced basis; Solve detects it and degrades that re-solve
// to a cold one.
//
// When a warm re-solve cannot be completed (iteration limit, numerical
// trouble, or an apparent infeasibility that could be drift), Solve
// transparently falls back to one cold solve from scratch; Stats reports how
// many solves and pivots took each path.
type Incremental struct {
	p         *Problem
	opts      *Options
	t         *tableau
	synced    int       // prefix of p.constraints reflected in the tableau
	objective []float64 // objective snapshot the solved tableau was priced with
	status    Status    // status of the last Solve (warm restarts require Optimal)
	lastWarm  bool
	failures  int  // consecutive warm attempts that fell back to cold
	noWarm    bool // warm restarts permanently disabled after repeated failures
	stats     IncrementalStats
}

// maxWarmFailures is the number of consecutive failed warm attempts after
// which the handle stops trying to warm-start: some problem, the pivoting
// keeps stalling on, should not pay a wasted warm budget on every Solve.
const maxWarmFailures = 2

// IncrementalStats counts the work done by an Incremental handle.
type IncrementalStats struct {
	// WarmSolves and WarmPivots count the Solve calls (and their simplex
	// pivots) that re-optimized from the previous optimal basis.
	WarmSolves, WarmPivots int
	// ColdSolves and ColdPivots count the Solve calls that solved from the
	// slack basis: the first solve and any fallback re-solve.
	ColdSolves, ColdPivots int
}

// NewIncremental returns an incremental handle over the problem. The problem
// may already contain constraints; nothing is solved until Solve is called.
func NewIncremental(p *Problem, opts *Options) *Incremental {
	return &Incremental{p: p, opts: opts}
}

// Problem returns the underlying problem (shared with the handle, not a
// copy).
func (inc *Incremental) Problem() *Problem { return inc.p }

// Stats returns the cumulative warm/cold solve and pivot counters.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// LastWarm reports whether the most recent Solve reused the previous basis.
func (inc *Incremental) LastWarm() bool { return inc.lastWarm }

// AddConstraint appends a dense constraint row (see Problem.AddConstraint).
func (inc *Incremental) AddConstraint(coeffs []float64, rel Relation, rhs float64) {
	inc.p.AddConstraint(coeffs, rel, rhs)
}

// AddSparseConstraint appends a sparse constraint row (see
// Problem.AddSparseConstraint).
func (inc *Incremental) AddSparseConstraint(terms []Term, rel Relation, rhs float64) {
	inc.p.AddSparseConstraint(terms, rel, rhs)
}

// Solve re-optimizes the problem over all constraints added so far. The
// first call (and any call after a solve that did not end Optimal) solves
// cold; later calls run warm from the previous optimal basis. A warm attempt
// that does not reach optimality falls back to one cold solve: the returned
// Solution then reflects the cold result and its Iterations include the
// pivots of both attempts.
func (inc *Incremental) Solve() (*Solution, error) {
	return inc.SolveContext(context.Background())
}

// SolveContext is Solve with cooperative cancellation. A canceled solve
// leaves the handle consistent but cold: the mid-pivot tableau is discarded
// (it must not seed a future warm start), the cancellation does not count
// toward the warm-failure limit, and the next Solve simply re-solves from
// scratch. A canceled warm attempt returns the wrapped ErrCanceled directly
// instead of falling back to a cold solve — the caller's deadline has
// already expired, so burning a full cold solve on its budget would defeat
// the point of canceling.
func (inc *Incremental) SolveContext(ctx context.Context) (*Solution, error) {
	if inc.p == nil || inc.p.numVars == 0 {
		return nil, ErrBadProblem
	}
	var warmSpent int
	if inc.t != nil && inc.status == Optimal && !inc.noWarm && inc.objectiveUnchanged() {
		sol := inc.warmSolve(ctx)
		inc.stats.WarmSolves++
		inc.stats.WarmPivots += sol.Iterations
		if sol.Status == Optimal {
			inc.lastWarm = true
			inc.failures = 0
			return sol, nil
		}
		if sol.Status == Canceled {
			inc.t = nil
			return nil, canceledErr(ctx)
		}
		// The warm attempt stalled (or proved infeasibility, which could be
		// accumulated drift): discard the tableau and re-solve from scratch.
		warmSpent = sol.Iterations
		inc.t = nil
		inc.failures++
		if inc.failures >= maxWarmFailures {
			inc.noWarm = true
		}
	}
	sol, t, err := solveWithTableau(ctx, inc.p, inc.opts)
	if err != nil {
		inc.t = nil
		return nil, err
	}
	inc.t = t
	inc.synced = inc.p.NumConstraints()
	inc.objective = append(inc.objective[:0], inc.p.objective...)
	inc.status = sol.Status
	inc.lastWarm = false
	inc.stats.ColdSolves++
	inc.stats.ColdPivots += sol.Iterations
	sol.Iterations += warmSpent
	return sol, nil
}

// objectiveUnchanged reports whether the problem's objective still matches
// the snapshot the solved tableau was priced with. A changed objective
// invalidates the cost row, so Solve silently degrades to a cold re-solve
// instead of returning a stale "optimal" basis.
func (inc *Incremental) objectiveUnchanged() bool {
	if len(inc.objective) != len(inc.p.objective) {
		return false
	}
	for i, v := range inc.p.objective {
		if inc.objective[i] != v {
			return false
		}
	}
	return true
}

// warmSolve appends the not-yet-synced constraint rows to the solved tableau
// and re-optimizes from the previous basis: dual simplex until primal
// feasibility is restored, then primal simplex to polish any numerical drift
// (usually zero pivots).
func (inc *Incremental) warmSolve(ctx context.Context) *Solution {
	t := inc.t
	appended := 0
	for _, c := range inc.p.constraints[inc.synced:] {
		switch c.rel {
		case LE:
			t.appendRowLE(c.coeffs, c.rhs)
			appended++
		case GE:
			t.appendRowLE(negated(c.coeffs), -c.rhs)
			appended++
		case EQ:
			t.appendRowLE(c.coeffs, c.rhs)
			t.appendRowLE(negated(c.coeffs), -c.rhs)
			appended += 2
		}
	}
	inc.synced = len(inc.p.constraints)

	// A healthy warm re-solve needs a handful of pivots per appended row;
	// cap the budget well below a cold solve's so that a re-solve stalling
	// on degenerate pivots bails out to the cold fallback instead of
	// burning the full iteration allowance first.
	maxIter := maxIterations(inc.opts, t)
	if budget := 2*t.rows + 32*appended + 128; budget < maxIter {
		maxIter = budget
	}
	sol := &Solution{X: make([]float64, inc.p.numVars), Phase: 2}
	status := t.dualIterate(ctx, maxIter, &sol.Iterations)
	if status == Optimal {
		status = t.iterate(ctx, maxIter, &sol.Iterations, true)
	}
	sol.Status = status
	inc.status = status
	// Only Optimal warm results reach callers (Solve discards anything else
	// and falls back to a cold solve), so nothing is extracted otherwise.
	if status == Optimal {
		t.extract(sol.X)
		sol.Objective = dot(inc.p.objective, sol.X)
		sol.Feasible = true
	}
	return sol
}

func negated(c []float64) []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = -v
	}
	return out
}
