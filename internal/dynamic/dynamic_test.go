package dynamic

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/steady"
	"repro/internal/topology"
)

// churnPlatform builds a mid-size random platform with enough redundancy
// for every event category.
func churnPlatform(t *testing.T, nodes int, seed int64) *platform.Platform {
	t.Helper()
	p, err := topology.Random(topology.DefaultRandomConfig(nodes, 0.3), topology.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateTraceDeterministic(t *testing.T) {
	p := churnPlatform(t, 16, 11)
	prof, err := ProfileByName(ProfileMixed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := GenerateTrace(p, 0, prof, 40, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(p, 0, prof, 40, 99)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same (platform, seed) produced different traces")
	}
	if len(a.Events) != 40 {
		t.Fatalf("trace has %d events, want 40", len(a.Events))
	}
	// The input platform must be untouched.
	if p.Mutated() {
		t.Fatal("GenerateTrace mutated the input platform")
	}
	// Different seeds must diverge.
	c, err := GenerateTrace(p, 0, prof, 40, 100)
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateTraceKeepsPlatformBroadcastable(t *testing.T) {
	p := churnPlatform(t, 16, 5)
	prof, err := ProfileByName(ProfileFailures)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(p, 0, prof, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	shadow := p.Clone()
	last := math.Inf(-1)
	for i, ev := range tr.Events {
		if ev.Time < last {
			t.Fatalf("event %d out of order: %v < %v", i, ev.Time, last)
		}
		last = ev.Time
		if _, err := shadow.ApplyDelta(ev.Delta); err != nil {
			t.Fatalf("event %d (%v): %v", i, ev.Delta, err)
		}
		if err := shadow.ValidateLive(0); err != nil {
			t.Fatalf("event %d (%v) broke broadcastability: %v", i, ev.Delta, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName(""); err != nil {
		t.Fatalf("empty name should select the default profile: %v", err)
	}
	if _, err := ProfileByName("no-such-profile"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	for _, name := range ProfileNames() {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("listed profile %q not resolvable: %v", name, err)
		}
	}
}

// TestRunPolicyProperties is the core churn property test: after every
// event, each policy's tree must be a spanning tree of the live nodes
// (acyclic by the arborescence structure ValidateLive checks) unless the
// policy is reported broken, and its throughput must not exceed the
// re-solved optimum.
func TestRunPolicyProperties(t *testing.T) {
	p := churnPlatform(t, 14, 21)
	prof, err := ProfileByName(ProfileFailures)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(p, 0, prof, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	shadow := p.Clone()
	idx := 0
	cfg := Config{
		Steady: &steady.Options{GapTolerance: 1e-9},
		OnEvent: func(ev EventOutcome, trees PolicyTrees) {
			if _, err := shadow.ApplyDelta(tr.Events[idx].Delta); err != nil {
				t.Fatalf("event %d: %v", idx, err)
			}
			idx++
			for name, tree := range map[string]*platform.Tree{
				PolicyRepair:  trees.Repair,
				PolicyRebuild: trees.Rebuild,
			} {
				if err := tree.ValidateLive(shadow); err != nil {
					t.Errorf("event %d: %s tree invalid: %v", ev.Index, name, err)
				}
			}
			// The keep tree must be live-valid exactly when not broken.
			keepErr := trees.Keep.ValidateLive(shadow)
			keepBroken := ev.Policies[0].Broken
			if (keepErr == nil) == keepBroken {
				t.Errorf("event %d: keep broken=%v but ValidateLive=%v", ev.Index, keepBroken, keepErr)
			}
			for _, po := range ev.Policies {
				if po.Throughput > ev.Optimal*(1+1e-6) {
					t.Errorf("event %d: %s throughput %v exceeds optimum %v", ev.Index, po.Policy, po.Throughput, ev.Optimal)
				}
				if po.Ratio < 0 || po.Ratio > 1+1e-6 {
					t.Errorf("event %d: %s ratio %v outside [0, 1]", ev.Index, po.Policy, po.Ratio)
				}
			}
		},
	}
	rep, err := Run(p, 0, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != len(tr.Events) {
		t.Fatalf("report has %d events, want %d", len(rep.Events), len(tr.Events))
	}
	// Lost slices must be monotone non-decreasing per policy.
	for pi := range PolicyNames() {
		last := 0.0
		for _, ev := range rep.Events {
			if ev.Policies[pi].LostSlices < last-1e-9 {
				t.Errorf("policy %s lost slices decreased: %v -> %v", ev.Policies[pi].Policy, last, ev.Policies[pi].LostSlices)
			}
			last = ev.Policies[pi].LostSlices
		}
	}
	// The input platform must be untouched (Run clones).
	if p.Mutated() {
		t.Fatal("Run mutated the input platform")
	}
	// Summaries line up with policies.
	if len(rep.Summary) != 3 {
		t.Fatalf("summary has %d entries", len(rep.Summary))
	}
	for i, name := range PolicyNames() {
		if rep.Summary[i].Policy != name {
			t.Errorf("summary[%d] = %q, want %q", i, rep.Summary[i].Policy, name)
		}
	}
	// The rebuild policy should never be broken, and repair must reattach
	// something over a failure-heavy trace.
	if rep.Summary[2].BrokenEvents != 0 {
		t.Errorf("rebuild policy broken %d times", rep.Summary[2].BrokenEvents)
	}
	if rep.Summary[1].Reattached == 0 {
		t.Error("repair policy never reattached a node over a failure-heavy trace")
	}
}

// TestRunDeterministic two runs of the same (platform, trace) must produce
// byte-identical JSON reports.
func TestRunDeterministic(t *testing.T) {
	p := churnPlatform(t, 12, 8)
	prof, err := ProfileByName(ProfileMixed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(p, 0, prof, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(p, 0, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, 0, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("identical runs produced different reports")
	}
}

// TestRunWarmMatchesColdResolve the incremental session and the per-event
// cold oracle must agree on every event's optimum.
func TestRunWarmMatchesColdResolve(t *testing.T) {
	p := churnPlatform(t, 12, 13)
	prof, err := ProfileByName(ProfileMixed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(p, 0, prof, 25, 6)
	if err != nil {
		t.Fatal(err)
	}
	opts := &steady.Options{GapTolerance: 1e-9}
	warm, err := Run(p, 0, tr, Config{Steady: opts})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(p, 0, tr, Config{Steady: opts, ColdResolve: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.Events {
		w, c := warm.Events[i].Optimal, cold.Events[i].Optimal
		rel := math.Abs(w-c) / math.Max(c, 1e-12)
		if rel > 1e-6 {
			t.Errorf("event %d: warm optimum %v vs cold %v (rel %v)", i, w, c, rel)
		}
	}
	if warm.LP.WarmResolves == 0 {
		t.Error("warm run reports no warm resolves over a drift-heavy trace")
	}
}
