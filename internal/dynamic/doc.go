// Package dynamic is the dynamic-platform churn engine: it plays a
// deterministic, seeded timeline of platform mutations (link bandwidth
// drift, link down/up, node crash/rejoin — see Trace and the churn
// Profiles) against a running broadcast and compares three adaptation
// policies at every event:
//
//   - keep: the current tree is never changed. Transfers into dead subtrees
//     simply do not happen; if an alive node is stranded the policy is
//     "broken" for the event and delivers nothing.
//
//   - repair: the tree is patched locally (heuristics.RepairTree): orphaned
//     subtrees are re-grafted through best residual-bandwidth live links,
//     stranded nodes are rewired individually. The number of reattached
//     nodes is the deterministic repair-latency proxy.
//
//   - rebuild: the configured heuristic rebuilds a tree from scratch on the
//     live platform, seeded with the re-solved LP edge rates.
//
// Every event's policies are measured against the re-solved steady-state
// optimum. The re-solve is incremental: one steady.Session carries the
// warm-started master LP and the accumulated cut pool across mutations
// (tightening events append rows into the previous optimal basis; loosening
// events rebuild from the pool). Config.ColdResolve retains per-event cold
// solves as the differential-testing oracle, the same pattern as the
// solver's own warm/cold split.
//
// Between events each policy delivers throughput × elapsed-time slices; the
// running shortfall against the optimum (lost slices) is the trace-level
// figure of merit. Reports are deterministic for a fixed (platform, trace)
// pair: wall-clock timings are only recorded on request.
package dynamic
