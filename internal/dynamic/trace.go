package dynamic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/platform"
	"repro/internal/topology"
)

// Event is one timestamped platform mutation of a churn trace.
type Event struct {
	// Time is the simulated instant of the mutation (time units of the
	// platform's cost model).
	Time float64 `json:"time"`
	// Delta is the mutation applied to the platform at that instant.
	Delta platform.Delta `json:"delta"`
}

// Trace is a deterministic timeline of platform mutations. Traces generated
// with the same (platform, source, profile, events, seed) inputs are
// byte-identical; the scenario registry derives the seed from the family
// seed so a trace is part of the registry contract.
type Trace struct {
	// Profile is the name of the churn profile that generated the trace.
	Profile string `json:"profile"`
	// Seed is the trace-generation seed.
	Seed int64 `json:"seed"`
	// Horizon is the end of the timeline; the interval after the last event
	// is accounted against it.
	Horizon float64 `json:"horizon"`
	// Events is the timeline in increasing time order.
	Events []Event `json:"events"`
}

// Profile parameterizes a churn-trace generator: the mix of event
// categories, the recovery bias, the drift magnitude and the event rate.
type Profile struct {
	// Name is the registry key of the profile.
	Name string `json:"name"`
	// Description is a one-line human-readable summary.
	Description string `json:"description"`
	// Drift, LinkFlap and NodeChurn are the relative weights of the three
	// event categories (bandwidth drift, link down/up, node crash/rejoin).
	Drift     float64 `json:"drift"`
	LinkFlap  float64 `json:"linkFlap"`
	NodeChurn float64 `json:"nodeChurn"`
	// RecoverProb is the probability that a flap/churn event revives a
	// currently-down element instead of taking a new one down (when any
	// element is down).
	RecoverProb float64 `json:"recoverProb"`
	// DriftMin and DriftMax bound the log-uniform link cost scale factor of
	// drift events (factors above 1 slow the link down).
	DriftMin float64 `json:"driftMin"`
	DriftMax float64 `json:"driftMax"`
	// MeanGap is the mean exponential inter-event time.
	MeanGap float64 `json:"meanGap"`
}

// Built-in churn profile names.
const (
	ProfileDrift      = "drift"
	ProfileFlakyLinks = "flaky-links"
	ProfileFailures   = "failures"
	ProfileMixed      = "mixed"
)

// DefaultProfile is the profile used when a scenario family does not name
// one.
const DefaultProfile = ProfileMixed

var profiles = map[string]Profile{
	ProfileDrift: {
		Name:        ProfileDrift,
		Description: "pure bandwidth drift (no failures); safe for fragile topologies like chains and stars",
		Drift:       1,
		DriftMin:    0.5, DriftMax: 2.0,
		MeanGap: 1,
	},
	ProfileFlakyLinks: {
		Name:        ProfileFlakyLinks,
		Description: "link down/up churn over mild bandwidth drift",
		Drift:       0.4, LinkFlap: 0.6,
		RecoverProb: 0.45,
		DriftMin:    0.67, DriftMax: 1.5,
		MeanGap: 1,
	},
	ProfileFailures: {
		Name:        ProfileFailures,
		Description: "node crash/rejoin and link churn (hierarchical-platform failure model)",
		Drift:       0.3, LinkFlap: 0.35, NodeChurn: 0.35,
		RecoverProb: 0.5,
		DriftMin:    0.67, DriftMax: 1.5,
		MeanGap: 1,
	},
	ProfileMixed: {
		Name:        ProfileMixed,
		Description: "balanced mix of drift, link flaps and node churn",
		Drift:       0.5, LinkFlap: 0.3, NodeChurn: 0.2,
		RecoverProb: 0.5,
		DriftMin:    0.5, DriftMax: 2.0,
		MeanGap: 1,
	},
}

// ProfileNames returns the built-in churn profile names in sorted order.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ProfileByName returns the named churn profile. An empty name selects
// DefaultProfile; unknown names are rejected with the list of known ones.
func ProfileByName(name string) (Profile, error) {
	if name == "" {
		name = DefaultProfile
	}
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("dynamic: unknown churn profile %q (known profiles: %v)", name, ProfileNames())
	}
	return p, nil
}

// candidateAttempts bounds the rejection sampling of down events: a
// candidate that would disconnect the live platform is undone and redrawn;
// after this many rejections the event degrades to a drift event so fragile
// topologies still produce full-length traces.
const candidateAttempts = 20

// GenerateTrace builds a deterministic churn trace against the platform:
// the generator maintains a shadow copy, applies every candidate mutation
// to it and only emits events that keep the live platform broadcastable
// from the source (the source itself never crashes). The input platform is
// not modified.
func GenerateTrace(p *platform.Platform, source int, prof Profile, events int, seed int64) (*Trace, error) {
	if events < 0 {
		return nil, fmt.Errorf("dynamic: negative event count %d", events)
	}
	total := prof.Drift + prof.LinkFlap + prof.NodeChurn
	if total <= 0 || prof.MeanGap <= 0 || prof.DriftMin <= 0 || prof.DriftMax < prof.DriftMin {
		return nil, fmt.Errorf("dynamic: invalid churn profile %+v", prof)
	}
	shadow := p.Clone()
	if err := shadow.ValidateLive(source); err != nil {
		return nil, err
	}
	rng := topology.NewRNG(seed)
	tr := &Trace{Profile: prof.Name, Seed: seed, Events: make([]Event, 0, events)}
	now := 0.0
	for i := 0; i < events; i++ {
		now += rng.ExpFloat64() * prof.MeanGap
		d, ok := nextDelta(shadow, source, prof, rng)
		if !ok {
			// Unreachable while the generator maintains its invariants
			// (>= 2 alive nodes implies a live link to drift); a short trace
			// must never masquerade as a full-length one.
			return nil, fmt.Errorf("dynamic: no candidate mutation for event %d of %d", i, events)
		}
		if _, err := shadow.ApplyDelta(d); err != nil {
			return nil, fmt.Errorf("dynamic: generated delta %v does not apply: %w", d, err)
		}
		tr.Events = append(tr.Events, Event{Time: now, Delta: d})
	}
	tr.Horizon = now + prof.MeanGap
	return tr, nil
}

// nextDelta draws one mutation that keeps the shadow platform live-valid.
// The shadow is left unchanged (candidates are undone).
func nextDelta(shadow *platform.Platform, source int, prof Profile, rng *rand.Rand) (platform.Delta, bool) {
	total := prof.Drift + prof.LinkFlap + prof.NodeChurn
	pick := rng.Float64() * total
	switch {
	case pick < prof.Drift:
		// fall through to drift below
	case pick < prof.Drift+prof.LinkFlap:
		if d, ok := linkFlap(shadow, source, prof, rng); ok {
			return d, true
		}
	default:
		if d, ok := nodeChurn(shadow, source, prof, rng); ok {
			return d, true
		}
	}
	return driftDelta(shadow, prof, rng)
}

// driftDelta scales a random live link by a log-uniform factor.
func driftDelta(shadow *platform.Platform, prof Profile, rng *rand.Rand) (platform.Delta, bool) {
	live := liveLinkIDs(shadow)
	if len(live) == 0 {
		return platform.Delta{}, false
	}
	id := live[rng.Intn(len(live))]
	u := rng.Float64()
	factor := prof.DriftMin * math.Pow(prof.DriftMax/prof.DriftMin, u)
	return platform.Delta{Kind: platform.DeltaScaleLink, Link: id, Factor: factor}, true
}

// linkFlap revives a down link (with probability RecoverProb when one
// exists) or takes a live link down, keeping the platform broadcastable.
func linkFlap(shadow *platform.Platform, source int, prof Profile, rng *rand.Rand) (platform.Delta, bool) {
	down := downLinkIDs(shadow)
	if len(down) > 0 && rng.Float64() < prof.RecoverProb {
		return platform.Delta{Kind: platform.DeltaLinkUp, Link: down[rng.Intn(len(down))]}, true
	}
	live := liveLinkIDs(shadow)
	for attempt := 0; attempt < candidateAttempts && len(live) > 0; attempt++ {
		id := live[rng.Intn(len(live))]
		d := platform.Delta{Kind: platform.DeltaLinkDown, Link: id}
		undo, err := shadow.ApplyDelta(d)
		if err != nil {
			continue
		}
		ok := shadow.ValidateLive(source) == nil
		if _, err := shadow.ApplyDelta(undo); err != nil {
			panic(fmt.Sprintf("dynamic: undo %v failed: %v", undo, err))
		}
		if ok {
			return d, true
		}
	}
	return platform.Delta{}, false
}

// nodeChurn revives a crashed node (with probability RecoverProb when one
// exists) or crashes an alive non-source node, keeping the platform
// broadcastable.
func nodeChurn(shadow *platform.Platform, source int, prof Profile, rng *rand.Rand) (platform.Delta, bool) {
	var downNodes []int
	for u := 0; u < shadow.NumNodes(); u++ {
		if !shadow.NodeAlive(u) {
			downNodes = append(downNodes, u)
		}
	}
	if len(downNodes) > 0 && rng.Float64() < prof.RecoverProb {
		// A rejoining node must itself be reachable: its live links may have
		// been flapped down before (or during) the crash, so revivals are
		// rejection-sampled like downs.
		for attempt := 0; attempt < candidateAttempts; attempt++ {
			d := platform.Delta{Kind: platform.DeltaNodeUp, Node: downNodes[rng.Intn(len(downNodes))]}
			undo, err := shadow.ApplyDelta(d)
			if err != nil {
				continue
			}
			ok := shadow.ValidateLive(source) == nil
			if _, err := shadow.ApplyDelta(undo); err != nil {
				panic(fmt.Sprintf("dynamic: undo %v failed: %v", undo, err))
			}
			if ok {
				return d, true
			}
		}
	}
	var alive []int
	for u := 0; u < shadow.NumNodes(); u++ {
		if u != source && shadow.NodeAlive(u) {
			alive = append(alive, u)
		}
	}
	for attempt := 0; attempt < candidateAttempts && len(alive) > 0; attempt++ {
		v := alive[rng.Intn(len(alive))]
		d := platform.Delta{Kind: platform.DeltaNodeDown, Node: v}
		undo, err := shadow.ApplyDelta(d)
		if err != nil {
			continue
		}
		// Keep at least one alive destination: a lone source passes
		// ValidateLive vacuously but has no live link left for later drift
		// events (and a degenerate infinite optimum).
		ok := shadow.NumAliveNodes() >= 2 && shadow.ValidateLive(source) == nil
		if _, err := shadow.ApplyDelta(undo); err != nil {
			panic(fmt.Sprintf("dynamic: undo %v failed: %v", undo, err))
		}
		if ok {
			return d, true
		}
	}
	return platform.Delta{}, false
}

// liveLinkIDs returns the usable link IDs in increasing order.
func liveLinkIDs(p *platform.Platform) []int {
	var ids []int
	for id := 0; id < p.NumLinks(); id++ {
		if p.LinkLive(id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// downLinkIDs returns the explicitly failed link IDs in increasing order.
func downLinkIDs(p *platform.Platform) []int {
	var ids []int
	for id := 0; id < p.NumLinks(); id++ {
		if !p.LinkAlive(id) {
			ids = append(ids, id)
		}
	}
	return ids
}
