package dynamic

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/steady"
	"repro/internal/throughput"
)

// Policy names, in report order.
const (
	PolicyKeep    = "keep"
	PolicyRepair  = "repair"
	PolicyRebuild = "rebuild"
)

// PolicyNames returns the policy names in report order.
func PolicyNames() []string { return []string{PolicyKeep, PolicyRepair, PolicyRebuild} }

// Config parameterizes a churn run.
type Config struct {
	// Heuristic is the tree-construction heuristic used for the initial
	// tree and by the rebuild policy (default: lp-grow-tree, which reuses
	// the session's re-solved edge rates for free).
	Heuristic string
	// Model is the port model under which trees are evaluated (default
	// one-port bidirectional, as in the paper).
	Model model.PortModel
	// Steady tunes the steady-state re-solver (nil = defaults).
	Steady *steady.Options
	// ColdResolve replaces the incremental steady session with a fresh
	// cold solve at every event: the differential-testing oracle and the
	// baseline of BenchmarkChurnResolve.
	ColdResolve bool
	// RecordTimings enables wall-clock measurements (repair latency in
	// nanoseconds, total run time). Off by default so reports are
	// byte-for-byte deterministic.
	RecordTimings bool
	// OnEvent, when non-nil, is invoked after every event with the outcome
	// and the current policy trees (shared, not copies — used by property
	// tests and visualization; do not mutate).
	OnEvent func(EventOutcome, PolicyTrees)
}

func (c Config) heuristic() string {
	if c.Heuristic == "" {
		return heuristics.NameLPGrowTree
	}
	return c.Heuristic
}

// PolicyTrees bundles the current tree of each policy.
type PolicyTrees struct {
	Keep    *platform.Tree
	Repair  *platform.Tree
	Rebuild *platform.Tree
}

// PolicyOutcome is the outcome of one policy at one event.
type PolicyOutcome struct {
	Policy string `json:"policy"`
	// Throughput is the policy's steady-state throughput right after the
	// event (0 when broken).
	Throughput float64 `json:"throughput"`
	// Ratio is Throughput / Optimal (0 when the optimum is degenerate).
	Ratio float64 `json:"ratio"`
	// Broken reports that some alive node receives nothing under the
	// policy's tree.
	Broken bool `json:"broken,omitempty"`
	// Reattached is the number of nodes whose parent edge the repair
	// changed at this event (repair policy only) — the deterministic
	// repair-latency proxy.
	Reattached int `json:"reattached,omitempty"`
	// RepairNanos is the wall time of the repair (repair policy, only with
	// Config.RecordTimings).
	RepairNanos int64 `json:"repairNanos,omitempty"`
	// LostSlices is the cumulative shortfall of delivered slices against
	// the optimum from time 0 up to this event.
	LostSlices float64 `json:"lostSlices"`
}

// EventOutcome is the outcome of one churn event.
type EventOutcome struct {
	Index int     `json:"index"`
	Time  float64 `json:"time"`
	// Delta is the mutation applied at the event.
	Delta platform.Delta `json:"delta"`
	// AliveNodes and LiveLinks describe the platform after the mutation.
	AliveNodes int `json:"aliveNodes"`
	LiveLinks  int `json:"liveLinks"`
	// Optimal is the re-solved steady-state optimum after the mutation.
	Optimal float64 `json:"optimal"`
	// ResolveWarm reports whether the re-solve reused the warm master
	// (false on rebuilds and in ColdResolve mode); ResolvePivots counts its
	// simplex pivots.
	ResolveWarm   bool `json:"resolveWarm"`
	ResolvePivots int  `json:"resolvePivots"`
	// Policies holds the keep/repair/rebuild outcomes, in PolicyNames order.
	Policies []PolicyOutcome `json:"policies"`
}

// PolicySummary aggregates one policy over a whole trace.
type PolicySummary struct {
	Policy string `json:"policy"`
	// MeanRatio and MinRatio summarize the per-event ratios.
	MeanRatio float64 `json:"meanRatio"`
	MinRatio  float64 `json:"minRatio"`
	// BrokenEvents counts the events after which the policy stranded at
	// least one alive node.
	BrokenEvents int `json:"brokenEvents"`
	// Reattached is the total number of parent-edge changes (repair only).
	Reattached int `json:"reattached"`
	// DeliveredSlices is the number of slices delivered over the horizon;
	// LostSlices is the shortfall against the optimum.
	DeliveredSlices float64 `json:"deliveredSlices"`
	LostSlices      float64 `json:"lostSlices"`
}

// Report is the outcome of one churn run.
type Report struct {
	Source    int    `json:"source"`
	Heuristic string `json:"heuristic"`
	Model     string `json:"model"`
	// Profile, Seed and Horizon echo the trace.
	Profile string  `json:"profile"`
	Seed    int64   `json:"seed"`
	Horizon float64 `json:"horizon"`
	// InitialOptimal and InitialThroughput describe the pristine platform
	// before the first event.
	InitialOptimal    float64 `json:"initialOptimal"`
	InitialThroughput float64 `json:"initialThroughput"`
	// Events holds one outcome per trace event.
	Events []EventOutcome `json:"events"`
	// Summary holds one aggregate per policy, in PolicyNames order.
	Summary []PolicySummary `json:"summary"`
	// ResolvePivots is the total number of simplex pivots spent re-solving
	// the optimum (initial solve plus every event), in both warm-session
	// and cold-per-event mode — the headline metric of
	// BenchmarkChurnResolve.
	ResolvePivots int `json:"resolvePivots"`
	// LP reports the steady-session work across the whole trace (all zero
	// in Config.ColdResolve mode, which bypasses the session).
	LP steady.SessionStats `json:"lp"`
	// WallNanos is the total run time (only with Config.RecordTimings).
	WallNanos int64 `json:"wallNanos,omitempty"`
}

// Errors returned by Run.
var ErrBadTrace = errors.New("dynamic: trace does not apply to the platform")

// policyState tracks one policy while the trace plays. The optimum-slice
// accumulator lives once in Run (it is identical for every policy); only
// the delivered slices differ per policy.
type policyState struct {
	name       string
	tree       *platform.Tree
	throughput float64
	delivered  float64
	ratios     []float64
	broken     int
	reattached int
}

func (ps *policyState) advance(dt float64) {
	if dt <= 0 {
		return
	}
	if !math.IsInf(ps.throughput, 0) && !math.IsNaN(ps.throughput) {
		ps.delivered += ps.throughput * dt
	}
}

func (ps *policyState) lost(optimalAcc float64) float64 {
	return math.Max(0, optimalAcc-ps.delivered)
}

// Run plays the trace against a private clone of the platform and returns
// the per-event and per-policy report. The run is fully deterministic for a
// fixed (platform, source, trace, cfg) tuple unless Config.RecordTimings is
// set.
func Run(base *platform.Platform, source int, trace *Trace, cfg Config) (*Report, error) {
	//lint:ignore detrand opt-in wall-time instrumentation (RecordTimings); excluded from canonical reports
	start := time.Now()
	p := base.Clone()
	if err := p.ValidateLive(source); err != nil {
		return nil, err
	}
	heurName := cfg.heuristic()
	if _, err := heuristics.ByName(heurName); err != nil {
		return nil, err
	}

	session := steady.NewSession(p, source, cfg.Steady)
	resolve := func() (*steady.Solution, bool, error) {
		if cfg.ColdResolve {
			sol, err := steady.Solve(p, source, cfg.Steady)
			return sol, false, err
		}
		before := session.Stats().WarmResolves
		sol, err := session.Resolve()
		return sol, session.Stats().WarmResolves > before, err
	}

	sol, _, err := resolve()
	if err != nil {
		return nil, err
	}
	resolvePivots := sol.LPIterations
	initial, err := buildLiveTree(p, source, heurName, sol.EdgeRate)
	if err != nil {
		return nil, err
	}
	initialTP := throughput.TreeThroughput(p, initial, cfg.Model)

	rep := &Report{
		Source:            source,
		Heuristic:         heurName,
		Model:             cfg.Model.String(),
		Profile:           trace.Profile,
		Seed:              trace.Seed,
		Horizon:           trace.Horizon,
		InitialOptimal:    sol.Throughput,
		InitialThroughput: initialTP,
		Events:            make([]EventOutcome, 0, len(trace.Events)),
	}

	states := []*policyState{
		{name: PolicyKeep, tree: initial, throughput: initialTP},
		{name: PolicyRepair, tree: initial, throughput: initialTP},
		{name: PolicyRebuild, tree: initial, throughput: initialTP},
	}
	optimal := sol.Throughput
	optimalAcc := 0.0
	now := 0.0
	advanceAll := func(until float64) {
		dt := until - now
		if dt > 0 && !math.IsInf(optimal, 0) && !math.IsNaN(optimal) {
			optimalAcc += optimal * dt
		}
		for _, ps := range states {
			ps.advance(dt)
		}
		now = until
	}

	for i, ev := range trace.Events {
		if ev.Time < now {
			return nil, fmt.Errorf("%w: event %d at time %v before %v", ErrBadTrace, i, ev.Time, now)
		}
		advanceAll(ev.Time)
		if _, err := p.ApplyDelta(ev.Delta); err != nil {
			return nil, fmt.Errorf("%w: event %d (%v): %v", ErrBadTrace, i, ev.Delta, err)
		}
		sol, warm, err := resolve()
		if err != nil {
			return nil, fmt.Errorf("dynamic: re-solve after event %d (%v): %w", i, ev.Delta, err)
		}
		optimal = sol.Throughput
		resolvePivots += sol.LPIterations

		out := EventOutcome{
			Index:         i,
			Time:          ev.Time,
			Delta:         ev.Delta,
			AliveNodes:    p.NumAliveNodes(),
			LiveLinks:     len(liveLinkIDs(p)),
			Optimal:       optimal,
			ResolveWarm:   warm,
			ResolvePivots: sol.LPIterations,
		}
		for _, ps := range states {
			po := PolicyOutcome{Policy: ps.name}
			switch ps.name {
			case PolicyKeep:
				pruned, complete, err := ps.tree.LivePrune(p)
				if err != nil {
					return nil, fmt.Errorf("dynamic: keep policy at event %d: %w", i, err)
				}
				po.Broken = !complete
				if complete {
					ps.throughput = throughput.TreeThroughput(p, pruned, cfg.Model)
				} else {
					ps.throughput = 0
				}
			case PolicyRepair:
				//lint:ignore detrand opt-in wall-time instrumentation (RecordTimings); excluded from canonical reports
				repairStart := time.Now()
				repaired, st, err := heuristics.RepairTree(p, source, ps.tree)
				if err != nil {
					return nil, fmt.Errorf("dynamic: repair policy at event %d: %w", i, err)
				}
				if cfg.RecordTimings {
					//lint:ignore detrand opt-in wall-time instrumentation (RecordTimings); excluded from canonical reports
					po.RepairNanos = time.Since(repairStart).Nanoseconds()
				}
				ps.tree = repaired
				ps.reattached += st.Reattached
				po.Reattached = st.Reattached
				ps.throughput = throughput.TreeThroughput(p, repaired, cfg.Model)
			case PolicyRebuild:
				rebuilt, err := buildLiveTree(p, source, heurName, sol.EdgeRate)
				if err != nil {
					return nil, fmt.Errorf("dynamic: rebuild policy at event %d: %w", i, err)
				}
				ps.tree = rebuilt
				ps.throughput = throughput.TreeThroughput(p, rebuilt, cfg.Model)
			}
			po.Throughput = ps.throughput
			if optimal > 0 && !math.IsInf(optimal, 0) {
				po.Ratio = ps.throughput / optimal
			}
			if po.Broken {
				ps.broken++
			}
			ps.ratios = append(ps.ratios, po.Ratio)
			po.LostSlices = ps.lost(optimalAcc)
			out.Policies = append(out.Policies, po)
		}
		rep.Events = append(rep.Events, out)
		if cfg.OnEvent != nil {
			cfg.OnEvent(out, PolicyTrees{Keep: states[0].tree, Repair: states[1].tree, Rebuild: states[2].tree})
		}
	}

	// Account the tail interval up to the horizon.
	if trace.Horizon > now {
		advanceAll(trace.Horizon)
	}
	for _, ps := range states {
		sum := PolicySummary{
			Policy:          ps.name,
			BrokenEvents:    ps.broken,
			Reattached:      ps.reattached,
			DeliveredSlices: ps.delivered,
			LostSlices:      ps.lost(optimalAcc),
			MinRatio:        math.Inf(1),
		}
		for _, r := range ps.ratios {
			sum.MeanRatio += r
			if r < sum.MinRatio {
				sum.MinRatio = r
			}
		}
		if len(ps.ratios) > 0 {
			sum.MeanRatio /= float64(len(ps.ratios))
		} else {
			sum.MinRatio = 0
		}
		rep.Summary = append(rep.Summary, sum)
	}
	rep.ResolvePivots = resolvePivots
	rep.LP = session.Stats()
	if cfg.RecordTimings {
		//lint:ignore detrand opt-in wall-time instrumentation (RecordTimings); excluded from canonical reports
		rep.WallNanos = time.Since(start).Nanoseconds()
	}
	return rep, nil
}

// buildLiveTree builds a spanning tree of the platform's live part with the
// named heuristic. On a fully-live platform the heuristic runs directly;
// otherwise it runs on a compacted copy containing only the alive nodes and
// live links (the existing heuristics assume every node is reachable), and
// the tree is mapped back to original node and link IDs with dead nodes
// left detached.
func buildLiveTree(p *platform.Platform, source int, heuristic string, rates []float64) (*platform.Tree, error) {
	if p.NumAliveNodes() == p.NumNodes() && len(liveLinkIDs(p)) == p.NumLinks() {
		b, err := heuristics.ByNameWithRates(heuristic, rates)
		if err != nil {
			return nil, err
		}
		return b.Build(p, source)
	}
	cp, nodeOf, linkOf, cSource := compactLive(p, source)
	var cRates []float64
	if rates != nil {
		cRates = make([]float64, len(linkOf))
		for i, id := range linkOf {
			cRates[i] = rates[id]
		}
	}
	b, err := heuristics.ByNameWithRates(heuristic, cRates)
	if err != nil {
		return nil, err
	}
	ct, err := b.Build(cp, cSource)
	if err != nil {
		return nil, err
	}
	out := platform.NewTree(p.NumNodes(), source)
	for cv, parent := range ct.Parent {
		if parent >= 0 {
			out.SetParent(nodeOf[cv], nodeOf[parent], linkOf[ct.ParentLink[cv]])
		}
	}
	if err := out.ValidateLive(p); err != nil {
		return nil, fmt.Errorf("dynamic: mapped-back tree invalid: %w", err)
	}
	return out, nil
}

// compactLive materializes the live sub-platform: alive nodes re-indexed
// densely (in increasing original order), live links re-added in increasing
// original link order. It returns the compact platform, the compact→original
// node and link maps, and the compact source index.
func compactLive(p *platform.Platform, source int) (*platform.Platform, []int, []int, int) {
	n := p.NumNodes()
	compactOf := make([]int, n)
	nodeOf := make([]int, 0, p.NumAliveNodes())
	for u := 0; u < n; u++ {
		if p.NodeAlive(u) {
			compactOf[u] = len(nodeOf)
			nodeOf = append(nodeOf, u)
		} else {
			compactOf[u] = -1
		}
	}
	cp := platform.New(len(nodeOf))
	cp.SetSliceSize(p.SliceSize())
	for cv, u := range nodeOf {
		cp.SetNode(cv, p.Node(u))
	}
	var linkOf []int
	for id := 0; id < p.NumLinks(); id++ {
		if !p.LinkLive(id) {
			continue
		}
		l := p.Link(id)
		cp.MustAddLink(compactOf[l.From], compactOf[l.To], l.Cost)
		linkOf = append(linkOf, id)
	}
	return cp, nodeOf, linkOf, compactOf[source]
}
