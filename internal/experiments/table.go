package experiments

import (
	"fmt"
	"strings"

	"repro/internal/heuristics"
)

// Row is one line of an experiment table: an x value (number of nodes,
// density, ...) and, for every heuristic, the mean and standard deviation of
// its relative performance across the platforms of the cell.
type Row struct {
	// Label is a human-readable description of the cell (e.g. "30 nodes").
	Label string
	// X is the numeric sweep value of the cell (node count, density, ...).
	X float64
	// Mean maps heuristic name to mean relative performance.
	Mean map[string]float64
	// Dev maps heuristic name to the standard deviation of the relative
	// performance.
	Dev map[string]float64
	// Samples is the number of platforms aggregated in the cell.
	Samples int
}

// Table is the result of one experiment: one row per sweep value, one column
// per heuristic. It can be rendered as aligned text (Format) or CSV.
type Table struct {
	// ID identifies the experiment ("fig4a", "fig4b", "fig5", "table3", ...).
	ID string
	// Title is a human-readable description.
	Title string
	// XLabel describes the sweep dimension.
	XLabel string
	// Heuristics is the column order (canonical heuristic names).
	Heuristics []string
	// Rows are the table rows in sweep order.
	Rows []Row
}

// Format renders the table as aligned text with "mean ± dev" cells,
// mirroring the presentation of the paper's Table 3.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	cols := make([]string, 0, len(t.Heuristics)+1)
	cols = append(cols, t.XLabel)
	for _, h := range t.Heuristics {
		cols = append(cols, heuristics.PaperLabel(h))
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		line := make([]string, 0, len(cols))
		line = append(line, row.Label)
		for _, h := range t.Heuristics {
			line = append(line, fmt.Sprintf("%.0f%% (±%.0f%%)", 100*row.Mean[h], 100*row.Dev[h]))
		}
		cells[r] = line
		for i, c := range line {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeLine := func(line []string) {
		for i, c := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeLine(cols)
	for _, line := range cells {
		writeLine(line)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with one column per
// heuristic mean and one per deviation.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("x,label,samples")
	for _, h := range t.Heuristics {
		fmt.Fprintf(&b, ",%s_mean,%s_dev", h, h)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%g,%q,%d", row.X, row.Label, row.Samples)
		for _, h := range t.Heuristics {
			fmt.Fprintf(&b, ",%.6f,%.6f", row.Mean[h], row.Dev[h])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Series returns, for one heuristic, the x values and mean relative
// performances across the table rows — the data of one curve of a paper
// figure.
func (t *Table) Series(heuristic string) (xs, ys []float64) {
	for _, row := range t.Rows {
		if y, ok := row.Mean[heuristic]; ok {
			xs = append(xs, row.X)
			ys = append(ys, y)
		}
	}
	return xs, ys
}
