package experiments

import (
	"fmt"
	"math"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/scenarios"
	"repro/internal/stats"
	"repro/internal/steady"
	"repro/internal/throughput"
)

// Evaluation is the outcome of evaluating all requested heuristics on one
// platform instance.
type Evaluation struct {
	// Optimal is the MTP optimal throughput (one-port) used as reference.
	Optimal float64
	// Ratio maps heuristic name to its relative performance
	// (tree throughput under the evaluation model divided by Optimal).
	Ratio map[string]float64
	// Throughput maps heuristic name to the absolute tree throughput.
	Throughput map[string]float64
}

// EvaluatePlatform builds every named heuristic's tree on the platform and
// returns the relative performance with respect to the one-port MTP optimum,
// evaluating the trees under the given port model (the paper evaluates
// one-port heuristics under one-port and multi-port heuristics under
// multi-port, but always normalizes by the one-port LP bound).
//
// The steady-state LP is solved once; its edge rates are shared by the
// LP-based heuristics.
func EvaluatePlatform(p *platform.Platform, source int, names []string, evalModel model.PortModel) (*Evaluation, error) {
	opt, err := steady.Solve(p, source, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: steady-state LP: %w", err)
	}
	ev := &Evaluation{
		Optimal:    opt.Throughput,
		Ratio:      make(map[string]float64, len(names)),
		Throughput: make(map[string]float64, len(names)),
	}
	for _, name := range names {
		builder, err := heuristics.ByNameWithRates(name, opt.EdgeRate)
		if err != nil {
			return nil, err
		}
		var tp float64
		if rb, ok := builder.(heuristics.RoutingBuilder); ok {
			// Heuristics whose natural output is a routed schedule (the
			// binomial tree) are evaluated with link/node contention, as in
			// the paper.
			routing, err := rb.BuildRouting(p, source)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", name, err)
			}
			tp = throughput.RoutingThroughput(p, routing, evalModel)
		} else {
			tree, err := builder.Build(p, source)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", name, err)
			}
			tp = throughput.TreeThroughput(p, tree, evalModel)
		}
		ev.Throughput[name] = tp
		if opt.Throughput > 0 && !math.IsInf(opt.Throughput, 1) {
			ev.Ratio[name] = tp / opt.Throughput
		} else {
			ev.Ratio[name] = math.NaN()
		}
	}
	return ev, nil
}

// job is one platform instance to evaluate inside a cell of an experiment:
// a scenario from the registry instantiated at a given size and seed.
type job struct {
	cell     int // row index the result contributes to
	scenario scenarios.Scenario
	size     int
	seed     int64
}

// runJobs evaluates all jobs concurrently and aggregates the per-cell mean
// and deviation of each heuristic's relative performance.
func runJobs(cfg Config, jobs []job, numCells int, names []string, evalModel model.PortModel) ([]map[string]float64, []map[string]float64, []int, error) {
	type outcome struct {
		cell  int
		ratio map[string]float64
		err   error
	}
	results := parallel.Map(len(jobs), cfg.Workers, func(i int) outcome {
		j := jobs[i]
		p, err := j.scenario.Generate(j.size, j.seed)
		if err != nil {
			return outcome{cell: j.cell, err: err}
		}
		ev, err := EvaluatePlatform(p, cfg.Source, names, evalModel)
		if err != nil {
			return outcome{cell: j.cell, err: err}
		}
		return outcome{cell: j.cell, ratio: ev.Ratio}
	})

	samplesByCell := make([][]map[string]float64, numCells)
	for _, r := range results {
		if r.err != nil {
			return nil, nil, nil, r.err
		}
		samplesByCell[r.cell] = append(samplesByCell[r.cell], r.ratio)
	}

	means := make([]map[string]float64, numCells)
	devs := make([]map[string]float64, numCells)
	counts := make([]int, numCells)
	for cell := 0; cell < numCells; cell++ {
		means[cell] = make(map[string]float64, len(names))
		devs[cell] = make(map[string]float64, len(names))
		counts[cell] = len(samplesByCell[cell])
		for _, name := range names {
			sample := make([]float64, 0, counts[cell])
			for _, ratios := range samplesByCell[cell] {
				sample = append(sample, ratios[name])
			}
			s := stats.Summarize(sample)
			means[cell][name] = s.Mean
			devs[cell][name] = s.StdDev
		}
	}
	return means, devs, counts, nil
}

// jobSeed derives a deterministic per-job seed from the base seed and the
// job's position in the experiment.
func jobSeed(base int64, parts ...int) int64 {
	seed := base
	for _, p := range parts {
		seed = seed*1_000_003 + int64(p) + 1
	}
	if seed == 0 {
		seed = 1
	}
	return seed
}
