package experiments

import (
	"repro/internal/topology"
)

// Config controls the size and determinism of an experiment run.
type Config struct {
	// Seed is the base seed; every platform instance derives its own seed
	// from it, so results are reproducible bit-for-bit.
	Seed int64
	// Configurations is the number of random platforms generated per
	// parameter cell (the paper uses 10).
	Configurations int
	// TiersConfigurations is the number of Tiers-like platforms per size in
	// Table 3 (the paper uses 100).
	TiersConfigurations int
	// NodeCounts are the platform sizes swept by Figures 4(a) and 5
	// (default: 10, 20, 30, 40, 50).
	NodeCounts []int
	// Densities are the link densities swept by Figure 4(b) and averaged
	// over in Figures 4(a)/5 (default: 0.04 ... 0.20).
	Densities []float64
	// Source is the broadcast source processor (default 0).
	Source int
	// MultiPortFraction is the fraction of the fastest outgoing link used as
	// the per-send overhead under the multi-port model (the paper uses 0.8).
	MultiPortFraction float64
	// Workers bounds the number of platforms evaluated concurrently
	// (default: number of CPUs).
	Workers int
}

// PaperConfig returns the experiment sizes used by the paper: 10 random
// configurations per parameter cell and 100 Tiers platforms per size.
func PaperConfig() Config {
	return Config{
		Seed:                2004,
		Configurations:      10,
		TiersConfigurations: 100,
		NodeCounts:          topology.PaperNodeCounts(),
		Densities:           topology.PaperDensities(),
		MultiPortFraction:   0.8,
	}
}

// QuickConfig returns a reduced configuration suitable for benchmarks and
// smoke tests: smaller platforms and fewer repetitions, same structure.
func QuickConfig() Config {
	return Config{
		Seed:                2004,
		Configurations:      3,
		TiersConfigurations: 5,
		NodeCounts:          []int{10, 20, 30},
		Densities:           []float64{0.08, 0.16},
		MultiPortFraction:   0.8,
	}
}

// withDefaults fills the zero fields of a configuration.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2004
	}
	if c.Configurations <= 0 {
		c.Configurations = 10
	}
	if c.TiersConfigurations <= 0 {
		c.TiersConfigurations = c.Configurations
	}
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = topology.PaperNodeCounts()
	}
	if len(c.Densities) == 0 {
		c.Densities = topology.PaperDensities()
	}
	if c.MultiPortFraction <= 0 {
		c.MultiPortFraction = 0.8
	}
	return c
}
