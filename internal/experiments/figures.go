package experiments

import (
	"fmt"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/scenarios"
	"repro/internal/topology"
)

// Fig4a reproduces Figure 4(a) of the paper: the relative performance of the
// one-port heuristics as a function of the number of nodes, on random
// platforms, averaged over the density sweep and the per-cell
// configurations. The reference is the one-port MTP optimum.
func Fig4a(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	names := heuristics.OnePortNames()
	var jobs []job
	for ci, nodes := range cfg.NodeCounts {
		for di, density := range cfg.Densities {
			for rep := 0; rep < cfg.Configurations; rep++ {
				jobs = append(jobs, job{
					cell:     ci,
					seed:     jobSeed(cfg.Seed, 1, ci, di, rep),
					scenario: scenarios.RandomDensity(density, cfg.MultiPortFraction),
					size:     nodes,
				})
			}
		}
	}
	means, devs, counts, err := runJobs(cfg, jobs, len(cfg.NodeCounts), names, model.OnePortBidirectional)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "fig4a",
		Title:      "Relative performance vs. number of nodes (one-port, random platforms)",
		XLabel:     "nodes",
		Heuristics: names,
	}
	for ci, nodes := range cfg.NodeCounts {
		t.Rows = append(t.Rows, Row{
			Label:   fmt.Sprintf("%d nodes", nodes),
			X:       float64(nodes),
			Mean:    means[ci],
			Dev:     devs[ci],
			Samples: counts[ci],
		})
	}
	return t, nil
}

// Fig4b reproduces Figure 4(b): relative performance of the one-port
// heuristics as a function of the platform density, averaged over the node
// count sweep and the per-cell configurations.
func Fig4b(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	names := heuristics.OnePortNames()
	var jobs []job
	for di, density := range cfg.Densities {
		for ci, nodes := range cfg.NodeCounts {
			for rep := 0; rep < cfg.Configurations; rep++ {
				jobs = append(jobs, job{
					cell:     di,
					seed:     jobSeed(cfg.Seed, 2, di, ci, rep),
					scenario: scenarios.RandomDensity(density, cfg.MultiPortFraction),
					size:     nodes,
				})
			}
		}
	}
	means, devs, counts, err := runJobs(cfg, jobs, len(cfg.Densities), names, model.OnePortBidirectional)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "fig4b",
		Title:      "Relative performance vs. density (one-port, random platforms)",
		XLabel:     "density",
		Heuristics: names,
	}
	for di, density := range cfg.Densities {
		t.Rows = append(t.Rows, Row{
			Label:   fmt.Sprintf("density %.2f", density),
			X:       density,
			Mean:    means[di],
			Dev:     devs[di],
			Samples: counts[di],
		})
	}
	return t, nil
}

// Fig5 reproduces Figure 5: the multi-port heuristics (and the LP-based and
// binomial heuristics re-evaluated under the multi-port model) as a function
// of the number of nodes, still normalized by the one-port MTP optimum —
// which is why ratios above 1 are possible, exactly as in the paper.
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	names := heuristics.MultiPortNames()
	var jobs []job
	for ci, nodes := range cfg.NodeCounts {
		for di, density := range cfg.Densities {
			for rep := 0; rep < cfg.Configurations; rep++ {
				jobs = append(jobs, job{
					cell:     ci,
					seed:     jobSeed(cfg.Seed, 3, ci, di, rep),
					scenario: scenarios.RandomDensity(density, cfg.MultiPortFraction),
					size:     nodes,
				})
			}
		}
	}
	means, devs, counts, err := runJobs(cfg, jobs, len(cfg.NodeCounts), names, model.MultiPort)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "fig5",
		Title:      "Relative performance vs. number of nodes (multi-port heuristics, one-port MTP reference)",
		XLabel:     "nodes",
		Heuristics: names,
	}
	for ci, nodes := range cfg.NodeCounts {
		t.Rows = append(t.Rows, Row{
			Label:   fmt.Sprintf("%d nodes", nodes),
			X:       float64(nodes),
			Mean:    means[ci],
			Dev:     devs[ci],
			Samples: counts[ci],
		})
	}
	return t, nil
}

// Table3 reproduces Table 3 of the paper: the one-port heuristics on
// Tiers-like platforms with 30 and 65 nodes (mean relative performance and
// deviation over the generated platforms).
func Table3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	names := heuristics.OnePortNames()
	presets := []struct {
		label string
		nodes int
		cfg   topology.TiersConfig
	}{
		{"30 nodes", 30, topology.Tiers30()},
		{"65 nodes", 65, topology.Tiers65()},
	}
	var jobs []job
	for ci, preset := range presets {
		tiersCfg := preset.cfg
		tiersCfg.MultiPortFraction = cfg.MultiPortFraction
		scenario := scenarios.FromTiersConfig(
			fmt.Sprintf("tiers-%d", preset.nodes),
			fmt.Sprintf("Tiers-like platform preset of Table 3 (%s)", preset.label),
			tiersCfg)
		for rep := 0; rep < cfg.TiersConfigurations; rep++ {
			jobs = append(jobs, job{
				cell:     ci,
				seed:     jobSeed(cfg.Seed, 4, ci, rep),
				scenario: scenario,
				size:     preset.nodes,
			})
		}
	}
	means, devs, counts, err := runJobs(cfg, jobs, len(presets), names, model.OnePortBidirectional)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "table3",
		Title:      "One-port heuristics on Tiers-like platforms",
		XLabel:     "platform",
		Heuristics: names,
	}
	for ci, preset := range presets {
		t.Rows = append(t.Rows, Row{
			Label:   preset.label,
			X:       float64(preset.nodes),
			Mean:    means[ci],
			Dev:     devs[ci],
			Samples: counts[ci],
		})
	}
	return t, nil
}

// AblationSendFraction explores the paper's remark that the multi-port
// results "do not strongly depend" on setting the per-send overhead to 80%
// of the fastest outgoing link: the multi-port heuristics are re-evaluated
// with the fraction swept from 0.5 to 1.0 on mid-size random platforms.
func AblationSendFraction(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	names := heuristics.MultiPortNames()
	fractions := []float64{0.5, 0.65, 0.8, 0.95}
	nodes := 30
	if len(cfg.NodeCounts) > 0 {
		nodes = cfg.NodeCounts[len(cfg.NodeCounts)/2]
	}
	var jobs []job
	for fi, fraction := range fractions {
		for di, density := range cfg.Densities {
			for rep := 0; rep < cfg.Configurations; rep++ {
				jobs = append(jobs, job{
					cell:     fi,
					seed:     jobSeed(cfg.Seed, 5, fi, di, rep),
					scenario: scenarios.RandomDensity(density, fraction),
					size:     nodes,
				})
			}
		}
	}
	means, devs, counts, err := runJobs(cfg, jobs, len(fractions), names, model.MultiPort)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "ablation-send-fraction",
		Title:      fmt.Sprintf("Sensitivity to the multi-port send-overhead fraction (%d-node random platforms)", nodes),
		XLabel:     "send fraction",
		Heuristics: names,
	}
	for fi, fraction := range fractions {
		t.Rows = append(t.Rows, Row{
			Label:   fmt.Sprintf("fraction %.2f", fraction),
			X:       fraction,
			Mean:    means[fi],
			Dev:     devs[fi],
			Samples: counts[fi],
		})
	}
	return t, nil
}

// AblationPortDirection evaluates the one-port heuristics' trees under the
// stricter unidirectional one-port model (a node cannot send and receive at
// the same time), still normalized by the bidirectional MTP optimum. It
// quantifies how much of the reported performance relies on send/receive
// overlap.
func AblationPortDirection(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	names := heuristics.OnePortNames()
	var jobs []job
	for ci, nodes := range cfg.NodeCounts {
		for di, density := range cfg.Densities {
			for rep := 0; rep < cfg.Configurations; rep++ {
				jobs = append(jobs, job{
					cell:     ci,
					seed:     jobSeed(cfg.Seed, 6, ci, di, rep),
					scenario: scenarios.RandomDensity(density, cfg.MultiPortFraction),
					size:     nodes,
				})
			}
		}
	}
	means, devs, counts, err := runJobs(cfg, jobs, len(cfg.NodeCounts), names, model.OnePortUnidirectional)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "ablation-port-direction",
		Title:      "One-port heuristics evaluated under the unidirectional one-port model",
		XLabel:     "nodes",
		Heuristics: names,
	}
	for ci, nodes := range cfg.NodeCounts {
		t.Rows = append(t.Rows, Row{
			Label:   fmt.Sprintf("%d nodes", nodes),
			X:       float64(nodes),
			Mean:    means[ci],
			Dev:     devs[ci],
			Samples: counts[ci],
		})
	}
	return t, nil
}

// ExperimentIDs lists the identifiers accepted by Run.
func ExperimentIDs() []string {
	return []string{"fig4a", "fig4b", "fig5", "table3", "ablation-send-fraction", "ablation-port-direction"}
}

// Run executes the experiment with the given identifier.
func Run(id string, cfg Config) (*Table, error) {
	switch id {
	case "fig4a":
		return Fig4a(cfg)
	case "fig4b":
		return Fig4b(cfg)
	case "fig5":
		return Fig5(cfg)
	case "table3":
		return Table3(cfg)
	case "ablation-send-fraction":
		return AblationSendFraction(cfg)
	case "ablation-port-direction":
		return AblationPortDirection(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

// All runs every experiment and returns the tables in ExperimentIDs order.
func All(cfg Config) ([]*Table, error) {
	var tables []*Table
	for _, id := range ExperimentIDs() {
		t, err := Run(id, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
