// Package experiments reproduces the evaluation section of the paper: the
// relative-performance figures on random platforms (Figures 4(a), 4(b) and
// 5) and the Tiers-platform table (Table 3), plus two ablations suggested
// by the paper's text.
//
// Every experiment is a named configuration (Config) that sources its
// platforms from the scenario registry (internal/scenarios), evaluates the
// registered heuristics against the steady-state optimum across a worker
// pool, and returns a Table whose rows mirror the series/rows of the
// corresponding paper artifact — mean relative performance and its
// deviation across platform configurations, as the paper reports them.
// Scale presets trade platform counts for fidelity; cmd/bcast-bench is the
// CLI front end and can emit CSV for plotting.
package experiments
