package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/topology"
)

// tinyConfig keeps the experiment tests fast while still exercising the full
// pipeline (generation, LP solve, heuristics, aggregation).
func tinyConfig() Config {
	return Config{
		Seed:                7,
		Configurations:      2,
		TiersConfigurations: 2,
		NodeCounts:          []int{8, 12},
		Densities:           []float64{0.2},
		MultiPortFraction:   0.8,
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed == 0 || c.Configurations != 10 || c.TiersConfigurations != 10 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if len(c.NodeCounts) != 5 || len(c.Densities) != 5 || c.MultiPortFraction != 0.8 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	p := PaperConfig()
	if p.Configurations != 10 || p.TiersConfigurations != 100 {
		t.Fatalf("paper config wrong: %+v", p)
	}
	q := QuickConfig()
	if q.Configurations >= p.Configurations {
		t.Fatal("quick config should be smaller than the paper config")
	}
}

func TestEvaluatePlatform(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(10, 0.25), nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluatePlatform(p, 0, heuristics.OnePortNames(), model.OnePortBidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Optimal <= 0 {
		t.Fatalf("optimal = %v", ev.Optimal)
	}
	for _, name := range heuristics.OnePortNames() {
		r, ok := ev.Ratio[name]
		if !ok {
			t.Fatalf("missing ratio for %s", name)
		}
		if r <= 0 || r > 1+1e-6 {
			t.Fatalf("%s: ratio %v outside (0, 1]", name, r)
		}
		if math.Abs(ev.Throughput[name]-r*ev.Optimal) > 1e-6*ev.Optimal {
			t.Fatalf("%s: throughput and ratio inconsistent", name)
		}
	}
}

func TestEvaluatePlatformUnknownHeuristic(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(6, 0.4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluatePlatform(p, 0, []string{"bogus"}, model.OnePortBidirectional); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestFig4aShapeAndOrdering(t *testing.T) {
	table, err := Fig4a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if table.ID != "fig4a" || len(table.Rows) != 2 {
		t.Fatalf("table = %+v", table)
	}
	wantSamples := 2 * 1 // configurations x densities
	for _, row := range table.Rows {
		if row.Samples != wantSamples {
			t.Fatalf("row %q has %d samples, want %d", row.Label, row.Samples, wantSamples)
		}
		for _, h := range table.Heuristics {
			m := row.Mean[h]
			if m <= 0 || m > 1+1e-6 {
				t.Fatalf("row %q, %s: mean ratio %v outside (0, 1]", row.Label, h, m)
			}
			if row.Dev[h] < 0 {
				t.Fatalf("negative deviation")
			}
		}
		// Headline ordering of the paper: the advanced heuristics beat the
		// binomial tree by a wide margin.
		if row.Mean[heuristics.NamePruneDegree] <= row.Mean[heuristics.NameBinomial] {
			t.Fatalf("row %q: PruneDegree (%v) should beat Binomial (%v)",
				row.Label, row.Mean[heuristics.NamePruneDegree], row.Mean[heuristics.NameBinomial])
		}
	}
}

func TestFig4bShape(t *testing.T) {
	cfg := tinyConfig()
	cfg.Densities = []float64{0.15, 0.3}
	table, err := Fig4b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	if table.Rows[0].X != 0.15 || table.Rows[1].X != 0.3 {
		t.Fatalf("density rows wrong: %+v", table.Rows)
	}
	for _, row := range table.Rows {
		if row.Samples != cfg.Configurations*len(cfg.NodeCounts) {
			t.Fatalf("samples = %d", row.Samples)
		}
	}
}

func TestFig5AllowsRatiosAboveOne(t *testing.T) {
	table, err := Fig5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		for _, h := range table.Heuristics {
			if row.Mean[h] <= 0 {
				t.Fatalf("%s: non-positive ratio", h)
			}
		}
		// Multi-port grow tree must beat the binomial tree, as in Figure 5.
		if row.Mean[heuristics.NameMultiportGrowTree] <= row.Mean[heuristics.NameBinomial] {
			t.Fatalf("row %q: MultiportGrowTree should beat Binomial", row.Label)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	table, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 || table.Rows[0].Label != "30 nodes" || table.Rows[1].Label != "65 nodes" {
		t.Fatalf("rows = %+v", table.Rows)
	}
	for _, row := range table.Rows {
		if row.Samples != 2 {
			t.Fatalf("samples = %d", row.Samples)
		}
		// The paper's ordering on Tiers platforms: refined heuristics beat
		// the simple pruning, and the binomial tree is far worse.
		if row.Mean[heuristics.NamePruneDegree] <= row.Mean[heuristics.NameBinomial] {
			t.Fatalf("row %q: PruneDegree should beat Binomial", row.Label)
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := tinyConfig()
	frac, err := AblationSendFraction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(frac.Rows) != 4 {
		t.Fatalf("fraction rows = %d", len(frac.Rows))
	}
	dir, err := AblationPortDirection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir.Rows) != len(cfg.NodeCounts) {
		t.Fatalf("direction rows = %d", len(dir.Rows))
	}
	// The unidirectional model is more constrained, so ratios cannot exceed
	// the bidirectional ones... they may, however, stay equal on stars; just
	// check they remain in (0, 1].
	for _, row := range dir.Rows {
		for _, h := range dir.Heuristics {
			if row.Mean[h] <= 0 || row.Mean[h] > 1+1e-6 {
				t.Fatalf("unidirectional ratio %v outside (0, 1]", row.Mean[h])
			}
		}
	}
}

func TestRunAndAllIDs(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	ids := ExperimentIDs()
	if len(ids) != 6 {
		t.Fatalf("ids = %v", ids)
	}
	// Run a single known ID through the dispatcher.
	table, err := Run("fig4a", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if table.ID != "fig4a" {
		t.Fatalf("table ID = %q", table.ID)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := tinyConfig()
	a, err := Fig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for _, h := range a.Heuristics {
			if math.Abs(a.Rows[i].Mean[h]-b.Rows[i].Mean[h]) > 1e-12 {
				t.Fatalf("experiment is not deterministic for a fixed seed")
			}
		}
	}
}

func TestTableFormatCSVAndSeries(t *testing.T) {
	table, err := Fig4a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := table.Format()
	if !strings.Contains(text, "FIG4A") || !strings.Contains(text, "Prune Platform Degree") {
		t.Fatalf("formatted table missing headers:\n%s", text)
	}
	csv := table.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(table.Rows) {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "x,label,samples") {
		t.Fatalf("csv header = %q", lines[0])
	}
	xs, ys := table.Series(table.Heuristics[0])
	if len(xs) != len(table.Rows) || len(ys) != len(table.Rows) {
		t.Fatal("series length mismatch")
	}
	if _, ys := table.Series("unknown"); ys != nil {
		t.Fatal("unknown heuristic should give an empty series")
	}
}

func TestJobSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			s := jobSeed(1, a, b)
			if seen[s] {
				t.Fatalf("duplicate seed for (%d, %d)", a, b)
			}
			seen[s] = true
		}
	}
	if jobSeed(0) == 0 {
		t.Fatal("seed must never be zero")
	}
}
