package broadcast

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs is the documentation contract of the repository, enforced
// in CI: every internal package carries a dedicated doc.go whose package
// comment is a real overview (starts with "Package <name>" and says more
// than one throwaway line), so `go doc repro/internal/<pkg>` is useful and
// new packages cannot land undocumented.
func TestPackageDocs(t *testing.T) {
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	const minDocChars = 200
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := e.Name()
		docPath := filepath.Join("internal", pkg, "doc.go")
		t.Run(pkg, func(t *testing.T) {
			src, err := os.ReadFile(docPath)
			if err != nil {
				t.Fatalf("package %s has no doc.go: %v", pkg, err)
			}
			f, err := parser.ParseFile(token.NewFileSet(), docPath, src, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", docPath, err)
			}
			if f.Doc == nil {
				t.Fatalf("%s has no package comment", docPath)
			}
			text := f.Doc.Text()
			if !strings.HasPrefix(text, "Package "+pkg+" ") {
				t.Errorf("%s: package comment must start with %q, got %q",
					docPath, "Package "+pkg, firstLine(text))
			}
			if len(text) < minDocChars {
				t.Errorf("%s: package comment is %d chars; a real overview needs at least %d",
					docPath, len(text), minDocChars)
			}
			// doc.go is documentation only: no declarations beyond the
			// package clause.
			if len(f.Decls) != 0 {
				t.Errorf("%s: doc.go must contain only the package comment and clause, found %d declarations",
					docPath, len(f.Decls))
			}
		})
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
