// Package broadcast is the public façade of the repository: a library for
// building and evaluating pipelined broadcast trees on heterogeneous
// platforms, reproducing "Broadcast Trees for Heterogeneous Platforms"
// (Beaumont, Marchal, Robert, IPPS 2005 / LIP RR-2004-46).
//
// The typical workflow is:
//
//  1. obtain a Platform (generate a random or Tiers-like one, build one by
//     hand with NewPlatform/AddLink, or load one from JSON);
//  2. build a broadcast tree with one of the paper's heuristics
//     (BuildTree or the heuristics registry);
//  3. evaluate it: analytic steady-state throughput (TreeThroughput),
//     relative performance against the MTP optimum (OptimalThroughput),
//     or a slice-by-slice simulation (Simulate);
//  4. optionally run the full experiment harness (RunExperiment) to
//     regenerate the paper's figures and tables.
//
// The heavy lifting lives in the internal packages; this package only
// re-exports the stable surface.
package broadcast

import (
	"net/http"

	"repro/internal/dynamic"
	"repro/internal/experiments"
	"repro/internal/heuristics"
	"repro/internal/load"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pack"
	"repro/internal/platform"
	"repro/internal/scenarios"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/steady"
	"repro/internal/throughput"
	"repro/internal/topology"
)

// Core platform types.
type (
	// Platform is a heterogeneous target platform: processors connected by
	// directed links with affine communication costs.
	Platform = platform.Platform
	// Node is one processor of a platform.
	Node = platform.Node
	// Link is one directed communication link.
	Link = platform.Link
	// Tree is a spanning broadcast tree (out-arborescence rooted at the
	// source).
	Tree = platform.Tree
	// Routing is a broadcast schedule whose logical transfers may follow
	// multi-hop physical paths (used by the binomial heuristic).
	Routing = platform.Routing
	// AffineCost is an affine communication cost α + L·β.
	AffineCost = model.AffineCost
	// PortModel selects the communication model (one-port or multi-port).
	PortModel = model.PortModel
	// Regime identifies the broadcasting approach (STA, STP, MTP).
	Regime = model.Regime
)

// Port models and regimes (Table 1 and Section 2 of the paper).
const (
	OnePort               = model.OnePortBidirectional
	OnePortUnidirectional = model.OnePortUnidirectional
	MultiPort             = model.MultiPort

	STA = model.STA
	STP = model.STP
	MTP = model.MTP
)

// Heuristic names accepted by BuildTree and the experiment harness.
const (
	PruneSimple          = heuristics.NamePruneSimple
	PruneDegree          = heuristics.NamePruneDegree
	GrowTree             = heuristics.NameGrowTree
	Binomial             = heuristics.NameBinomial
	LPPrune              = heuristics.NameLPPrune
	LPGrowTree           = heuristics.NameLPGrowTree
	MultiportGrowTree    = heuristics.NameMultiportGrowTree
	MultiportPruneDegree = heuristics.NameMultiportPruneDegree
)

// Builder is the tree-construction interface implemented by every heuristic.
type Builder = heuristics.Builder

// RoutingBuilder is implemented by heuristics whose natural output is a
// routed schedule (the binomial heuristic).
type RoutingBuilder = heuristics.RoutingBuilder

// OptimalSolution is the optimal steady-state MTP solution: throughput and
// per-link message rates, plus cutting-plane statistics (rounds, cuts,
// warm/cold simplex pivots and the final master upper bound).
type OptimalSolution = steady.Solution

// OptimalOptions tunes the steady-state MTP solver: cutting-plane round and
// pivot budgets, termination tolerances, and the warm-started vs cold-start
// master LP mode.
type OptimalOptions = steady.Options

// Tree-packing types: the primal decomposition of the optimal edge rates
// into an explicitly schedulable weighted set of broadcast trees.
type (
	// TreePacking is a weighted packing of broadcast trees realizing the
	// steady-state LP optimum: k trees with positive weights whose combined
	// per-edge rates stay within the optimal solution's rates.
	TreePacking = steady.Packing
	// PackedTree is one tree of a packing together with its steady-state
	// weight (messages per time unit routed along that tree).
	PackedTree = steady.PackedTree
	// PackOptions tunes the decomposition: the tree-count cap and the
	// relative throughput tolerance.
	PackOptions = pack.Options
)

// PackOptimalRates decomposes a solved steady-state solution into a
// weighted packing of broadcast trees whose total throughput matches the LP
// optimum within the packing tolerance (deterministic: the same solution
// always yields the byte-identical packing). The packing is also attached
// to sol.Packing.
func PackOptimalRates(p *Platform, source int, sol *OptimalSolution, opts *PackOptions) (*TreePacking, error) {
	return pack.Decompose(p, source, sol, opts)
}

// Evaluation types.
type (
	// Report is the per-node steady-state evaluation of a tree.
	Report = throughput.Report
	// SimulationResult is the outcome of a slice-by-slice simulation.
	SimulationResult = sim.Result
	// SimulationConfig parameterizes a simulation.
	SimulationConfig = sim.Config
	// STAResult is the outcome of an atomic-broadcast (STA) heuristic.
	STAResult = sta.Result
)

// Experiment harness types.
type (
	// ExperimentConfig controls the size and determinism of an experiment.
	ExperimentConfig = experiments.Config
	// ResultTable is the output of one experiment (one row per sweep value,
	// one column per heuristic).
	ResultTable = experiments.Table
)

// Scenario registry and sweep engine types.
type (
	// Scenario is a named platform family: a deterministic seeded generator
	// of platforms at parameterised sizes.
	Scenario = scenarios.Scenario
	// SweepConfig parameterises a scenario x size x heuristic sweep.
	SweepConfig = scenarios.SweepConfig
	// SweepReport is the full outcome of a sweep, with runs and aggregates
	// in deterministic order.
	SweepReport = scenarios.SweepReport
	// SweepRun is the outcome of one heuristic on one generated platform.
	SweepRun = scenarios.RunResult
	// SweepAggregate summarises one (scenario, size, heuristic) cell.
	SweepAggregate = scenarios.Aggregate
)

// Dynamic-platform types: mutations, churn traces and the churn engine.
type (
	// Delta is one atomic platform mutation (link drift, link down/up,
	// node crash/rejoin), applied with (*Platform).ApplyDelta.
	Delta = platform.Delta
	// ChurnTrace is a deterministic seeded timeline of platform mutations.
	ChurnTrace = dynamic.Trace
	// ChurnEvent is one timestamped mutation of a churn trace.
	ChurnEvent = dynamic.Event
	// ChurnProfile parameterizes a churn-trace generator.
	ChurnProfile = dynamic.Profile
	// ChurnConfig parameterizes a churn run (heuristic, eval model, warm vs
	// cold re-solve).
	ChurnConfig = dynamic.Config
	// ChurnReport is the per-event and per-policy outcome of a churn run.
	ChurnReport = dynamic.Report
	// SteadySession carries the warm-started steady-state master LP and the
	// accumulated cut pool of one platform across mutations.
	SteadySession = steady.Session
	// ChurnSweepResult is the condensed churn outcome attached to sweep
	// runs; ChurnSweepAggregate summarizes one (scenario, size) cell.
	ChurnSweepResult    = scenarios.ChurnResult
	ChurnSweepAggregate = scenarios.ChurnAggregate
)

// Platform mutation kinds (Delta.Kind).
const (
	DeltaScaleLink = platform.DeltaScaleLink
	DeltaLinkDown  = platform.DeltaLinkDown
	DeltaLinkUp    = platform.DeltaLinkUp
	DeltaNodeDown  = platform.DeltaNodeDown
	DeltaNodeUp    = platform.DeltaNodeUp
)

// ChurnPolicies returns the adaptation policy names compared by the churn
// engine, in report order (keep, repair, rebuild).
func ChurnPolicies() []string { return dynamic.PolicyNames() }

// ChurnProfiles returns the built-in churn profile names in sorted order.
func ChurnProfiles() []string { return dynamic.ProfileNames() }

// ChurnProfileByName returns the named churn profile (empty name = default);
// unknown names are rejected with the list of known ones.
func ChurnProfileByName(name string) (ChurnProfile, error) { return dynamic.ProfileByName(name) }

// ChurnTraceSeed derives the trace seed of a platform seed, so that a
// platform and its churn timeline form one reproducible unit.
func ChurnTraceSeed(platformSeed int64) int64 { return scenarios.ChurnTraceSeed(platformSeed) }

// GenerateChurnTrace builds a deterministic churn trace against the
// platform: mutations keep the platform broadcastable from the source and
// the source never crashes.
func GenerateChurnTrace(p *Platform, source int, prof ChurnProfile, events int, seed int64) (*ChurnTrace, error) {
	return dynamic.GenerateTrace(p, source, prof, events, seed)
}

// ScenarioChurnTrace generates the named scenario family's platform at the
// given size together with its deterministic churn timeline (the trace seed
// is derived from the platform seed; same (size, seed) -> byte-identical
// platform and trace).
func ScenarioChurnTrace(name string, size, source int, seed int64) (*Platform, *ChurnTrace, error) {
	s, err := scenarios.Get(name)
	if err != nil {
		return nil, nil, err
	}
	return scenarios.ChurnTrace(s, size, source, seed)
}

// RunChurn plays a churn trace against a private clone of the platform,
// comparing the keep/repair/rebuild policies against the incrementally
// re-solved steady-state optimum at every event.
func RunChurn(p *Platform, source int, trace *ChurnTrace, cfg ChurnConfig) (*ChurnReport, error) {
	return dynamic.Run(p, source, trace, cfg)
}

// RepairTree locally repairs a broadcast tree after platform mutations:
// orphaned subtrees are re-grafted through best residual-bandwidth live
// links, stranded nodes rewired individually. It returns the repaired tree
// and the number of reattached nodes.
func RepairTree(p *Platform, source int, t *Tree) (*Tree, int, error) {
	repaired, st, err := heuristics.RepairTree(p, source, t)
	return repaired, st.Reattached, err
}

// NewSteadySession returns a steady-state solver session over the platform:
// Resolve re-solves the optimum after mutations, reusing the warm master LP
// and accumulated cut pool whenever the mutations allow.
func NewSteadySession(p *Platform, source int, opts *OptimalOptions) *SteadySession {
	return steady.NewSession(p, source, opts)
}

// Planning-service types: the concurrent fingerprint-keyed planning engine
// behind the bcast-serve CLI.
type (
	// Fingerprint is the canonical content hash of a platform:
	// permutation-invariant and byte-stable across runs; the plan cache key.
	Fingerprint = platform.Fingerprint
	// PlanEngine is the concurrent planning engine: an LRU cache of solved
	// plans and warm solver sessions keyed on platform fingerprints, over a
	// bounded worker pool.
	PlanEngine = service.Engine
	// PlanEngineConfig tunes a PlanEngine (cache size, workers, solver).
	PlanEngineConfig = service.Config
	// PlanRequest asks for the optimal plan of a platform — or of a cached
	// platform mutated by deltas (the near-duplicate fast path).
	PlanRequest = service.PlanRequest
	// PlanResult is the engine's answer: the plan, its canonical bytes, and
	// the cache/warm-path flags.
	PlanResult = service.PlanResult
	// PlanEngineStats snapshots the cache and solver counters.
	PlanEngineStats = service.Stats
	// PlanTrace is the record of one request through the engine: its ID,
	// outcome, and ordered typed span events (lookup, admit, solve, ...).
	PlanTrace = obs.Trace
	// PlanTracer buffers finished request traces in a bounded lock-sharded
	// ring; wire one into PlanEngineConfig.Tracer to trace an engine.
	PlanTracer = obs.Tracer
	// PlanTracerOptions configure a PlanTracer: ring capacity and the opt-in
	// WallClock mode (real timestamps and per-process IDs; the default is
	// deterministic content-derived IDs with no wall-clock fields).
	PlanTracerOptions = obs.Options
	// ConcurrentPlanRequest asks the engine to schedule several broadcasts
	// with distinct sources on one shared platform, splitting the one-port
	// capacity by explicit (or equal) shares.
	ConcurrentPlanRequest = service.ConcurrentRequest
	// ConcurrentPlanSource is one broadcast of a concurrent request: its
	// source processor and capacity share.
	ConcurrentPlanSource = service.ConcurrentSource
	// ConcurrentPlanResult is the engine's combined answer: per-source
	// scaled plans plus the shared capacity ledger.
	ConcurrentPlanResult = service.ConcurrentPlan
	// ConcurrentBroadcastPlan is one broadcast of a concurrent plan.
	ConcurrentBroadcastPlan = service.ConcurrentBroadcast
)

// PlatformFingerprint returns the canonical content fingerprint of a
// platform (see platform.Fingerprint for the invariance guarantees).
func PlatformFingerprint(p *Platform) Fingerprint { return p.Fingerprint() }

// ParseFingerprint parses the hex form of a fingerprint.
func ParseFingerprint(s string) (Fingerprint, error) { return platform.ParseFingerprint(s) }

// NewPlanEngine returns a planning engine with the given configuration.
func NewPlanEngine(cfg PlanEngineConfig) *PlanEngine { return service.New(cfg) }

// NewPlanHandler returns the HTTP/JSON API of the engine (the handler served
// by bcast-serve: /v1/plan, /v1/evaluate, /v1/churn, /v1/stats, /v1/metrics,
// /v1/trace, /metrics, /healthz).
func NewPlanHandler(e *PlanEngine) http.Handler { return service.NewHandler(e) }

// NewPlanTracer returns a trace ring buffer for PlanEngineConfig.Tracer.
// With the zero options the tracer is deterministic: content-derived trace
// IDs, no wall-clock data, snapshots sorted by ID — the same workload
// produces the byte-identical trace set at any worker count.
func NewPlanTracer(opts PlanTracerOptions) *PlanTracer { return obs.NewTracer(opts) }

// PlanMetricsText renders the engine's counters and solve-stage summaries
// as a Prometheus text exposition (version 0.0.4) — the same families the
// HTTP handler serves at GET /metrics, minus the per-route HTTP section.
func PlanMetricsText(e *PlanEngine) string { return service.PromText(e, nil) }

// Load-generation types: the deterministic workload replay subsystem behind
// the bcast-load CLI (package internal/load).
type (
	// LoadMix is a named workload: phases of zipf-skewed popularity, churn
	// lineages, renumbered twins and cold-miss floods over registry
	// scenarios.
	LoadMix = load.Mix
	// LoadPhaseSpec describes one phase of a mix.
	LoadPhaseSpec = load.PhaseSpec
	// LoadSchedule is a compiled mix: fully materialized requests in
	// dependency-ordered waves, with exact expected cache outcomes.
	LoadSchedule = load.Schedule
	// LoadOptions tune a replay (workers, pacing, wall-clock section).
	LoadOptions = load.Options
	// LoadReport is the canonical replay report (BENCH_load.json):
	// byte-identical for a fixed (mix, seed) across runs and worker counts.
	LoadReport = load.Report
	// LatencyHistogram is the fixed-bucket log-scale histogram used for
	// all latency recording (exact merge, deterministic quantiles).
	LatencyHistogram = stats.Histogram
)

// LoadMixes returns the built-in workload mix names in sorted order.
func LoadMixes() []string { return load.MixNames() }

// LoadMixByName returns the named built-in workload mix.
func LoadMixByName(name string) (LoadMix, error) { return load.MixByName(name) }

// CompileLoad materializes a workload mix into a deterministic schedule.
func CompileLoad(mix LoadMix, seed int64) (*LoadSchedule, error) { return load.Compile(mix, seed) }

// RunLoad replays a compiled schedule against a fresh in-process planning
// engine (with the burst gate wired in, so singleflight counts are exact)
// and returns the canonical report. For HTTP targets and custom engines use
// package internal/load via cmd/bcast-load.
func RunLoad(sched *LoadSchedule, opts LoadOptions) (*LoadReport, error) {
	engine, gate := load.NewInProcessEngine(sched, 0)
	opts.Gate = gate
	return load.Run(engine, sched, opts)
}

// Topology generation types.
type (
	// RandomConfig describes the random platforms of the paper's Table 2.
	RandomConfig = topology.RandomConfig
	// TiersConfig describes a Tiers-like hierarchical platform.
	TiersConfig = topology.TiersConfig
	// ClusterConfig describes a cluster-of-clusters platform.
	ClusterConfig = topology.ClusterConfig
	// BandwidthDist is a truncated Gaussian bandwidth distribution.
	BandwidthDist = topology.BandwidthDist
)

// NewPlatform returns an empty platform with n processors. Add links with
// (*Platform).AddLink or (*Platform).AddBidirectionalLink.
func NewPlatform(n int) *Platform { return platform.New(n) }

// NewTree returns an empty broadcast-tree skeleton rooted at root.
func NewTree(n, root int) *Tree { return platform.NewTree(n, root) }

// Linear returns an affine cost with zero start-up and the given per-unit
// transfer time (the cost form used throughout the paper's experiments).
func Linear(perUnit float64) AffineCost { return model.Linear(perUnit) }

// FromBandwidth returns a linear cost for a link of the given bandwidth.
func FromBandwidth(bandwidth float64) AffineCost { return model.FromBandwidth(bandwidth) }

// RandomPlatform generates a random heterogeneous platform following the
// paper's Table 2 parameters (Gaussian bandwidths, connectivity guaranteed,
// multi-port overheads at 80% of the fastest outgoing link).
func RandomPlatform(nodes int, density float64, seed int64) (*Platform, error) {
	return topology.Random(topology.DefaultRandomConfig(nodes, density), topology.NewRNG(seed))
}

// GeneratePlatform generates a random platform from an explicit
// configuration.
func GeneratePlatform(cfg RandomConfig, seed int64) (*Platform, error) {
	return topology.Random(cfg, topology.NewRNG(seed))
}

// TiersPlatform generates a Tiers-like hierarchical platform from an
// explicit configuration. Tiers30Config and Tiers65Config return the presets
// used by the paper's Table 3.
func TiersPlatform(cfg TiersConfig, seed int64) (*Platform, error) {
	return topology.Tiers(cfg, topology.NewRNG(seed))
}

// Tiers30Config returns the 30-node Tiers-like preset of Table 3.
func Tiers30Config() TiersConfig { return topology.Tiers30() }

// Tiers65Config returns the 65-node Tiers-like preset of Table 3.
func Tiers65Config() TiersConfig { return topology.Tiers65() }

// ClusterPlatform generates a cluster-of-clusters platform (fast clusters
// linked by a slow backbone), the scenario motivating topology-aware
// broadcast trees.
func ClusterPlatform(cfg ClusterConfig, seed int64) (*Platform, error) {
	return topology.Clusters(cfg, topology.NewRNG(seed))
}

// DefaultClusterConfig returns a 4x8 cluster-of-clusters configuration with
// a 10x gap between intra-cluster and backbone bandwidth.
func DefaultClusterConfig() ClusterConfig { return topology.DefaultClusterConfig() }

// ScenarioNames returns the names of all registered scenario families in
// sorted order.
func ScenarioNames() []string { return scenarios.Names() }

// ScenarioByName returns the scenario family registered under the given
// name.
func ScenarioByName(name string) (Scenario, error) { return scenarios.Get(name) }

// RegisterScenario adds a custom platform family to the scenario registry;
// it then participates in sweeps like the built-in families.
func RegisterScenario(s Scenario) error { return scenarios.Register(s) }

// GenerateScenario generates a platform of the named scenario family with
// the given node count and seed. Generation is deterministic: the same
// (name, size, seed) triple yields an identical platform.
func GenerateScenario(name string, size int, seed int64) (*Platform, error) {
	s, err := scenarios.Get(name)
	if err != nil {
		return nil, err
	}
	return s.Generate(size, seed)
}

// RunSweep evaluates scenario x size x heuristic combinations across a
// worker pool and returns the deterministic sweep report.
func RunSweep(cfg SweepConfig) (*SweepReport, error) { return scenarios.Sweep(cfg) }

// Heuristics returns the canonical names of all tree-construction
// heuristics, in the presentation order of the paper.
func Heuristics() []string { return heuristics.Names() }

// OnePortHeuristics returns the heuristics compared in the paper's one-port
// experiments (Figures 4(a), 4(b), Table 3).
func OnePortHeuristics() []string { return heuristics.OnePortNames() }

// MultiPortHeuristics returns the heuristics compared in the paper's
// multi-port experiment (Figure 5).
func MultiPortHeuristics() []string { return heuristics.MultiPortNames() }

// HeuristicLabel returns the label the paper uses for a heuristic name.
func HeuristicLabel(name string) string { return heuristics.PaperLabel(name) }

// NewBuilder returns the tree builder registered under the given name.
func NewBuilder(name string) (Builder, error) { return heuristics.ByName(name) }

// BuildTree builds a spanning broadcast tree with the named heuristic.
func BuildTree(p *Platform, source int, heuristic string) (*Tree, error) {
	b, err := heuristics.ByName(heuristic)
	if err != nil {
		return nil, err
	}
	return b.Build(p, source)
}

// BuildTreeWithRates builds a spanning broadcast tree with the named
// heuristic, injecting precomputed steady-state edge rates into the LP-based
// heuristics (LPPrune, LPGrowTree) so the linear program is solved only once
// per platform. For every other heuristic it behaves like BuildTree.
func BuildTreeWithRates(p *Platform, source int, heuristic string, rates []float64) (*Tree, error) {
	switch heuristic {
	case LPPrune:
		return heuristics.LPPrune{Rates: rates}.Build(p, source)
	case LPGrowTree:
		return heuristics.LPGrowTree{Rates: rates}.Build(p, source)
	default:
		return BuildTree(p, source, heuristic)
	}
}

// BuildRouting builds the routed broadcast schedule of a heuristic that has
// one (currently only the binomial heuristic); for plain tree heuristics it
// lifts the tree into the routing representation.
func BuildRouting(p *Platform, source int, heuristic string) (*Routing, error) {
	b, err := heuristics.ByName(heuristic)
	if err != nil {
		return nil, err
	}
	if rb, ok := b.(heuristics.RoutingBuilder); ok {
		return rb.BuildRouting(p, source)
	}
	tree, err := b.Build(p, source)
	if err != nil {
		return nil, err
	}
	return platform.RoutingFromTree(tree), nil
}

// TreeThroughput returns the steady-state throughput (slices per time unit)
// of a broadcast tree under the given port model.
func TreeThroughput(p *Platform, t *Tree, m PortModel) float64 {
	return throughput.TreeThroughput(p, t, m)
}

// RoutingThroughput returns the steady-state throughput of a routed
// broadcast schedule under the given port model, accounting for link and
// node contention between logical transfers.
func RoutingThroughput(p *Platform, r *Routing, m PortModel) float64 {
	return throughput.RoutingThroughput(p, r, m)
}

// EvaluateTree returns the full per-node steady-state report of a tree.
func EvaluateTree(p *Platform, t *Tree, m PortModel) *Report {
	return throughput.Evaluate(p, t, m)
}

// STAMakespan returns the completion time of an atomic (non-pipelined)
// broadcast of a message of the given size along the tree (one-port model).
func STAMakespan(p *Platform, t *Tree, totalSize float64) float64 {
	return throughput.STAMakespan(p, t, totalSize)
}

// OptimalThroughput computes the optimal steady-state MTP throughput of the
// platform under the one-port model (the value of the paper's linear
// program (2)) together with the per-link message rates. It is the reference
// against which the heuristics' "relative performance" is measured.
func OptimalThroughput(p *Platform, source int) (*OptimalSolution, error) {
	return steady.Solve(p, source, nil)
}

// OptimalThroughputWith is OptimalThroughput with explicit solver options
// (nil options behave exactly like OptimalThroughput).
func OptimalThroughputWith(p *Platform, source int, opts *OptimalOptions) (*OptimalSolution, error) {
	return steady.Solve(p, source, opts)
}

// Simulate broadcasts the given number of slices along the tree and returns
// timing statistics; the measured steady-state throughput converges to
// TreeThroughput as the slice count grows.
func Simulate(p *Platform, t *Tree, m PortModel, slices int) (*SimulationResult, error) {
	return sim.Simulate(p, t, sim.Config{Model: m, Slices: slices})
}

// BuildSTATree builds an atomic-broadcast (STA) tree with the Fastest Node
// First heuristic for a message of the given total size and returns it with
// its greedy makespan.
func BuildSTATree(p *Platform, source int, totalSize float64) (*STAResult, error) {
	return sta.Build(p, source, totalSize, sta.FastestNodeFirst)
}

// Experiments returns the identifiers of the paper-reproduction experiments
// accepted by RunExperiment: fig4a, fig4b, fig5, table3 and two ablations.
func Experiments() []string { return experiments.ExperimentIDs() }

// RunExperiment runs one experiment of the evaluation harness and returns
// its result table. Use PaperExperimentConfig for the paper's sizes or
// QuickExperimentConfig for a fast smoke run.
func RunExperiment(id string, cfg ExperimentConfig) (*ResultTable, error) {
	return experiments.Run(id, cfg)
}

// PaperExperimentConfig returns the experiment sizes used by the paper
// (10 random configurations per cell, 100 Tiers platforms per size).
func PaperExperimentConfig() ExperimentConfig { return experiments.PaperConfig() }

// QuickExperimentConfig returns a reduced configuration for smoke tests and
// benchmarks.
func QuickExperimentConfig() ExperimentConfig { return experiments.QuickConfig() }

// Compare builds every named heuristic on the platform and returns its
// relative performance with respect to the one-port MTP optimum, evaluating
// trees under the given port model. It is a convenience wrapper around the
// experiment harness's per-platform evaluation.
func Compare(p *Platform, source int, names []string, m PortModel) (map[string]float64, error) {
	ev, err := experiments.EvaluatePlatform(p, source, names, m)
	if err != nil {
		return nil, err
	}
	return ev.Ratio, nil
}
