// MPI comparison: how much is lost by broadcasting with the index-based
// binomial tree of classical MPI implementations instead of a
// topology-aware tree, as the platform grows and as its heterogeneity
// increases. This reproduces, on a single run, the qualitative message of
// the paper's Figures 4 and Table 3: the binomial schedule collapses on
// heterogeneous platforms because it routes many logical transfers across
// the same slow links.
//
// Run with:
//
//	go run ./examples/mpicompare
package main

import (
	"fmt"
	"log"

	broadcast "repro"
)

func main() {
	fmt.Println("binomial (MPI-style) vs topology-aware broadcast trees")
	fmt.Println("ratio = steady-state throughput relative to the MTP optimum (one-port)")
	fmt.Println()

	// Sweep the platform size on random platforms (density 0.12).
	fmt.Printf("%-22s %12s %14s %14s\n", "platform", "binomial", "grow-tree", "lp-grow-tree")
	for _, nodes := range []int{10, 20, 30, 40, 50} {
		p, err := broadcast.RandomPlatform(nodes, 0.12, int64(100+nodes))
		if err != nil {
			log.Fatal(err)
		}
		printRow(fmt.Sprintf("random %d nodes", nodes), p)
	}

	// Hierarchical (Tiers-like) platforms are where the gap is largest.
	for _, preset := range []struct {
		label string
		cfg   broadcast.TiersConfig
	}{
		{"tiers 30 nodes", broadcast.Tiers30Config()},
		{"tiers 65 nodes", broadcast.Tiers65Config()},
	} {
		p, err := broadcast.TiersPlatform(preset.cfg, 17)
		if err != nil {
			log.Fatal(err)
		}
		printRow(preset.label, p)
	}
}

func printRow(label string, p *broadcast.Platform) {
	source := 0
	opt, err := broadcast.OptimalThroughput(p, source)
	if err != nil {
		log.Fatal(err)
	}
	// The binomial schedule is evaluated with its routing contention (the
	// way an MPI library would actually run it on this platform).
	routing, err := broadcast.BuildRouting(p, source, broadcast.Binomial)
	if err != nil {
		log.Fatal(err)
	}
	binomial := broadcast.RoutingThroughput(p, routing, broadcast.OnePort) / opt.Throughput

	ratios := make(map[string]float64)
	for _, name := range []string{broadcast.GrowTree, broadcast.LPGrowTree} {
		tree, err := broadcast.BuildTreeWithRates(p, source, name, opt.EdgeRate)
		if err != nil {
			log.Fatal(err)
		}
		ratios[name] = broadcast.TreeThroughput(p, tree, broadcast.OnePort) / opt.Throughput
	}
	fmt.Printf("%-22s %11.1f%% %13.1f%% %13.1f%%\n",
		label, 100*binomial, 100*ratios[broadcast.GrowTree], 100*ratios[broadcast.LPGrowTree])
}
