// Grid LP example: on a realistic wide-area (Tiers-like) platform, use the
// steady-state linear program to (i) bound the achievable broadcast
// throughput, (ii) seed the LP-based heuristics with the optimal per-link
// message rates, and (iii) study how robust the chosen tree is when link
// performance drifts — the argument the paper's conclusion makes for
// single-tree schedules.
//
// Run with:
//
//	go run ./examples/gridlp
package main

import (
	"fmt"
	"log"
	"sort"

	broadcast "repro"
	"repro/internal/heuristics"
	"repro/internal/robustness"
)

func main() {
	// A 65-node Tiers-like platform (WAN core, MAN subnetworks, LAN hosts),
	// as used by the paper's Table 3.
	p, err := broadcast.TiersPlatform(broadcast.Tiers65Config(), 11)
	if err != nil {
		log.Fatal(err)
	}
	source := 0
	fmt.Printf("Tiers-like platform: %s\n\n", p)

	// Solve the steady-state LP once: optimal throughput + per-link rates.
	opt, err := broadcast.OptimalThroughput(p, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal MTP throughput: %.3f slices/time-unit\n", opt.Throughput)

	// The LP's edge rates reveal which links actually matter: print the five
	// busiest links of the optimal solution.
	type linkRate struct {
		id   int
		rate float64
	}
	rates := make([]linkRate, 0, p.NumLinks())
	for id, r := range opt.EdgeRate {
		if r > 1e-9 {
			rates = append(rates, linkRate{id, r})
		}
	}
	sort.Slice(rates, func(i, j int) bool { return rates[i].rate > rates[j].rate })
	fmt.Println("\nbusiest links in the optimal multiple-tree solution:")
	for i := 0; i < 5 && i < len(rates); i++ {
		l := p.Link(rates[i].id)
		fmt.Printf("  %2d: %s -> %s  %.2f slices/time-unit\n",
			rates[i].id, p.Node(l.From).Name, p.Node(l.To).Name, rates[i].rate)
	}

	// Compare the LP-seeded heuristics against the purely topological ones,
	// one-port and multi-port.
	fmt.Println("\nrelative performance (one-port / multi-port):")
	for _, name := range []string{
		broadcast.PruneDegree, broadcast.GrowTree, broadcast.LPPrune, broadcast.LPGrowTree,
		broadcast.MultiportGrowTree,
	} {
		tree, err := broadcast.BuildTreeWithRates(p, source, name, opt.EdgeRate)
		if err != nil {
			log.Fatal(err)
		}
		one := broadcast.TreeThroughput(p, tree, broadcast.OnePort) / opt.Throughput
		multi := broadcast.TreeThroughput(p, tree, broadcast.MultiPort) / opt.Throughput
		fmt.Printf("  %-26s %6.1f%% / %6.1f%%\n", broadcast.HeuristicLabel(name), 100*one, 100*multi)
	}

	// Robustness: perturb every link by ±15% and compare keeping the tree
	// fixed versus rebuilding it.
	builder, err := heuristics.ByName(broadcast.LPGrowTree)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := robustness.Analyze(p, source, builder, robustness.Config{
		Perturbation: 0.15,
		Trials:       10,
		Model:        broadcast.OnePort,
		Seed:         99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrobustness of the LP Grow Tree schedule to ±15%% link drift (10 trials):\n")
	fmt.Printf("  baseline ratio          : %5.1f%%\n", 100*rep.BaselineRatio)
	fmt.Printf("  fixed tree, perturbed   : %5.1f%% (±%.1f%%)\n", 100*rep.FixedTree.Mean, 100*rep.FixedTree.StdDev)
	fmt.Printf("  rebuilt tree, perturbed : %5.1f%% (±%.1f%%)\n", 100*rep.RebuiltTree.Mean, 100*rep.RebuiltTree.StdDev)
	fmt.Printf("  retained fraction       : %5.1f%%\n", 100*rep.RetainedFraction)
}
