// Cluster broadcast: the scenario that motivates topology-aware broadcast
// trees — a computational grid made of several fast clusters connected by a
// slow wide-area backbone. Broadcasting input data from one front-end must
// avoid pushing the message across the backbone more than necessary.
//
// The example compares the MPI-style binomial schedule (which ignores the
// topology) with the paper's topology-aware heuristics, both for the
// pipelined steady-state throughput (STP) and for the time to broadcast a
// large file once (atomic STA broadcast and pipelined makespan).
//
// Run with:
//
//	go run ./examples/clusterbcast
package main

import (
	"fmt"
	"log"

	broadcast "repro"
)

func main() {
	// Four clusters of eight nodes; intra-cluster links are ~10x faster than
	// the backbone links between front-ends.
	cfg := broadcast.DefaultClusterConfig()
	p, err := broadcast.ClusterPlatform(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	source := 0 // the front-end of the first cluster
	fmt.Printf("cluster-of-clusters platform: %s\n", p)
	fmt.Printf("clusters: %d x %d nodes, backbone ~10x slower than intra-cluster links\n\n",
		cfg.Clusters, cfg.NodesPerCluster)

	opt, err := broadcast.OptimalThroughput(p, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal MTP throughput: %.3f slices/time-unit\n\n", opt.Throughput)

	// Steady-state comparison: topology-aware trees vs the binomial schedule.
	fmt.Printf("%-26s %12s %8s\n", "heuristic", "throughput", "ratio")
	for _, name := range []string{
		broadcast.GrowTree, broadcast.PruneDegree, broadcast.LPGrowTree, broadcast.Binomial,
	} {
		var tp float64
		if name == broadcast.Binomial {
			routing, err := broadcast.BuildRouting(p, source, name)
			if err != nil {
				log.Fatal(err)
			}
			tp = broadcast.RoutingThroughput(p, routing, broadcast.OnePort)
		} else {
			tree, err := broadcast.BuildTreeWithRates(p, source, name, opt.EdgeRate)
			if err != nil {
				log.Fatal(err)
			}
			tp = broadcast.TreeThroughput(p, tree, broadcast.OnePort)
		}
		fmt.Printf("%-26s %12.3f %7.1f%%\n", broadcast.HeuristicLabel(name), tp, 100*tp/opt.Throughput)
	}

	// Broadcasting a 256 MB file: atomic broadcast (one big message) vs
	// pipelined broadcast of the same file cut into 1 MB slices, along the
	// grow-tree schedule.
	const fileSize = 256.0
	tree, err := broadcast.BuildTree(p, source, broadcast.GrowTree)
	if err != nil {
		log.Fatal(err)
	}
	atomic := broadcast.STAMakespan(p, tree, fileSize)
	res, err := broadcast.Simulate(p, tree, broadcast.OnePort, int(fileSize))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbroadcasting a %.0f MB file along the Grow Tree schedule:\n", fileSize)
	fmt.Printf("  atomic (STA)    : %8.1f time units\n", atomic)
	fmt.Printf("  pipelined (STP) : %8.1f time units (%.0f slices of 1 MB)\n", res.Makespan, fileSize)
	fmt.Printf("  speed-up        : %8.2fx\n", atomic/res.Makespan)

	// The Fastest Node First STA heuristic builds a different tree when the
	// whole file is sent at once.
	sta, err := broadcast.BuildSTATree(p, source, fileSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FNF atomic tree : %8.1f time units\n", sta.Makespan)
}
