// Quickstart: generate a small heterogeneous platform, build a broadcast
// tree with each heuristic, and compare their steady-state throughput with
// the optimal multiple-tree (MTP) bound.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	broadcast "repro"
)

func main() {
	// A 20-node random platform following the paper's Table 2 parameters
	// (Gaussian link bandwidths around 100 MB/s, density 0.15).
	p, err := broadcast.RandomPlatform(20, 0.15, 42)
	if err != nil {
		log.Fatal(err)
	}
	source := 0
	fmt.Printf("platform: %s\n\n", p)

	// The optimal MTP throughput (paper Section 4) is the reference bound.
	opt, err := broadcast.OptimalThroughput(p, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal MTP throughput: %.3f slices/time-unit\n\n", opt.Throughput)

	// Build a tree with every heuristic and report its relative performance.
	fmt.Printf("%-26s %10s %8s\n", "heuristic", "throughput", "ratio")
	for _, name := range broadcast.Heuristics() {
		tree, err := broadcast.BuildTreeWithRates(p, source, name, opt.EdgeRate)
		if err != nil {
			log.Fatal(err)
		}
		tp := broadcast.TreeThroughput(p, tree, broadcast.OnePort)
		fmt.Printf("%-26s %10.3f %7.1f%%\n", broadcast.HeuristicLabel(name), tp, 100*tp/opt.Throughput)
	}

	// Validate the steady-state analysis with a slice-by-slice simulation of
	// the best topology-aware heuristic.
	tree, err := broadcast.BuildTree(p, source, broadcast.GrowTree)
	if err != nil {
		log.Fatal(err)
	}
	res, err := broadcast.Simulate(p, tree, broadcast.OnePort, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGrow Tree simulated over 500 slices: steady throughput %.3f (analytic %.3f), makespan %.1f\n",
		res.SteadyThroughput, broadcast.TreeThroughput(p, tree, broadcast.OnePort), res.Makespan)
}
