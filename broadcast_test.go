package broadcast

import (
	"math"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	p, err := RandomPlatform(15, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalThroughput(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Throughput <= 0 {
		t.Fatalf("optimal throughput = %v", opt.Throughput)
	}
	for _, name := range Heuristics() {
		tree, err := BuildTree(p, 0, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tree.Validate(p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tp := TreeThroughput(p, tree, OnePort)
		if tp <= 0 || tp > opt.Throughput*(1+1e-6) {
			t.Fatalf("%s: throughput %v outside (0, optimal]", name, tp)
		}
		if HeuristicLabel(name) == "" {
			t.Fatalf("%s: empty label", name)
		}
	}
}

func TestPublicAPIBuildByHand(t *testing.T) {
	p := NewPlatform(3)
	if _, err := p.AddLink(0, 1, Linear(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddLink(1, 2, FromBandwidth(0.5)); err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(p, 0, GrowTree)
	if err != nil {
		t.Fatal(err)
	}
	if got := TreeThroughput(p, tree, OnePort); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("throughput = %v, want 0.5", got)
	}
	rep := EvaluateTree(p, tree, OnePort)
	if rep.Bottleneck != 1 && rep.Bottleneck != 0 {
		t.Fatalf("bottleneck = %d", rep.Bottleneck)
	}
	if ms := STAMakespan(p, tree, 10); ms <= 0 {
		t.Fatalf("STA makespan = %v", ms)
	}
	manual := NewTree(3, 0)
	manual.SetParent(1, 0, 0)
	manual.SetParent(2, 1, 1)
	if err := manual.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIUnknownHeuristic(t *testing.T) {
	p, err := RandomPlatform(6, 0.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildTree(p, 0, "nope"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if _, err := BuildRouting(p, 0, "nope"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if _, err := NewBuilder("nope"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestPublicAPIRoutingAndSimulation(t *testing.T) {
	p, err := RandomPlatform(12, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Binomial exposes its routed schedule; a plain heuristic is lifted.
	routing, err := BuildRouting(p, 0, Binomial)
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.Validate(p); err != nil {
		t.Fatal(err)
	}
	lifted, err := BuildRouting(p, 0, GrowTree)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(p, 0, GrowTree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(RoutingThroughput(p, lifted, OnePort)-TreeThroughput(p, tree, OnePort)) > 1e-9 {
		t.Fatal("lifted routing should evaluate like its tree")
	}

	res, err := Simulate(p, tree, OnePort, 200)
	if err != nil {
		t.Fatal(err)
	}
	analytic := TreeThroughput(p, tree, OnePort)
	if math.Abs(res.SteadyThroughput-analytic)/analytic > 0.05 {
		t.Fatalf("simulated %v vs analytic %v", res.SteadyThroughput, analytic)
	}
}

func TestPublicAPITopologiesAndSTA(t *testing.T) {
	tiers, err := TiersPlatform(Tiers30Config(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if tiers.NumNodes() != 30 {
		t.Fatalf("tiers nodes = %d", tiers.NumNodes())
	}
	if _, err := TiersPlatform(Tiers65Config(), 4); err != nil {
		t.Fatal(err)
	}
	clusters, err := ClusterPlatform(DefaultClusterConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildSTATree(clusters, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("STA makespan = %v", res.Makespan)
	}
	cfg := RandomConfig{Nodes: 9, Density: 0.3, Bandwidth: BandwidthDist{Mean: 100, StdDev: 20, Min: 10}}
	if _, err := GeneratePlatform(cfg, 6); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICompareAndExperiments(t *testing.T) {
	p, err := RandomPlatform(10, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	ratios, err := Compare(p, 0, OnePortHeuristics(), OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) != len(OnePortHeuristics()) {
		t.Fatalf("ratios = %v", ratios)
	}
	for name, r := range ratios {
		if r <= 0 || r > 1+1e-6 {
			t.Fatalf("%s: ratio %v", name, r)
		}
	}
	if len(MultiPortHeuristics()) == 0 || len(Experiments()) != 6 {
		t.Fatal("registry lists wrong")
	}

	cfg := ExperimentConfig{
		Seed:           3,
		Configurations: 1,
		NodeCounts:     []int{8},
		Densities:      []float64{0.25},
	}
	table, err := RunExperiment("fig4a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 || table.Rows[0].Samples != 1 {
		t.Fatalf("table = %+v", table)
	}
	if PaperExperimentConfig().Configurations != 10 || QuickExperimentConfig().Configurations >= 10 {
		t.Fatal("experiment config presets wrong")
	}
	if _, err := RunExperiment("nope", cfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPublicAPIScenariosAndSweep(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 6 {
		t.Fatalf("only %d scenario families registered: %v", len(names), names)
	}
	p, err := GenerateScenario("cluster-of-clusters", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 12 {
		t.Fatalf("scenario platform has %d nodes, want 12", p.NumNodes())
	}
	if _, err := GenerateScenario("no-such-family", 12, 3); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := ScenarioByName("star"); err != nil {
		t.Fatal(err)
	}

	rep, err := RunSweep(SweepConfig{
		Scenarios:   []string{"star", "chain"},
		Sizes:       []int{8},
		Heuristics:  []string{GrowTree, PruneSimple},
		Repetitions: 1,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meta.TotalRuns != 4 || len(rep.Aggregates) != 4 {
		t.Fatalf("sweep: %d runs, %d aggregates, want 4 each", rep.Meta.TotalRuns, len(rep.Aggregates))
	}
	for _, r := range rep.Runs {
		if r.Error != "" {
			t.Errorf("%s/%s: %s", r.Scenario, r.Heuristic, r.Error)
		}
		if math.IsNaN(r.Ratio) || r.Ratio <= 0 || r.Ratio > 1+1e-6 {
			t.Errorf("%s/%s: ratio %v", r.Scenario, r.Heuristic, r.Ratio)
		}
	}

	// The registry is process-global, so skip the registration when a
	// previous run of this test (go test -count=2) already added the entry.
	if _, err := ScenarioByName("facade-test-clique"); err == nil {
		return
	}
	if err := RegisterScenario(Scenario{
		Name:         "facade-test-clique",
		Description:  "tiny clique registered through the facade",
		MinSize:      2,
		DefaultSizes: []int{4},
		Generate: func(size int, seed int64) (*Platform, error) {
			p := NewPlatform(size)
			for u := 0; u < size; u++ {
				for v := u + 1; v < size; v++ {
					if _, _, err := p.AddBidirectionalLink(u, v, FromBandwidth(100)); err != nil {
						return nil, err
					}
				}
			}
			return p, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateScenario("facade-test-clique", 4, 1); err != nil {
		t.Fatal(err)
	}
}

// TestRunLoadFacade drives the load-replay subsystem through the public
// façade: compile a built-in mix, replay it against a fresh engine, and
// check the canonical counters line up with the schedule.
func TestRunLoadFacade(t *testing.T) {
	mix, err := LoadMixByName("smoke")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := CompileLoad(mix, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(sched, LoadOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Client.Errors != 0 {
		t.Fatalf("replay errors: %v", rep.Total.Client.ErrorSamples)
	}
	if rep.Total.Requests != sched.Requests || rep.Total.Engine.Misses != int64(sched.Distinct) {
		t.Errorf("total = %+v, want %d requests and %d misses", rep.Total, sched.Requests, sched.Distinct)
	}
	if rep.Evictions != 0 {
		t.Errorf("canonical replay evicted %d entries", rep.Evictions)
	}
	if len(LoadMixes()) == 0 {
		t.Error("no built-in mixes")
	}
}

// TestPublicAPIObservability exercises the observability exports: a traced
// engine records one deterministic trace per request, and the Prometheus
// rendering covers the engine counters and solve-stage summaries.
func TestPublicAPIObservability(t *testing.T) {
	p, err := GenerateScenario("star", 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewPlanEngine(PlanEngineConfig{
		CacheSize: 8,
		Tracer:    NewPlanTracer(PlanTracerOptions{Capacity: 8}),
	})
	for i := 0; i < 2; i++ {
		if _, err := e.Plan(PlanRequest{Platform: p, Source: 0}); err != nil {
			t.Fatal(err)
		}
	}
	traces := e.Tracer().Snapshot("", 0)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	outcomes := map[string]int{}
	for _, tr := range traces {
		if tr.ID == "" || len(tr.Events) == 0 {
			t.Errorf("malformed trace: %+v", tr)
		}
		if tr.StartNs != 0 || tr.DurNs != 0 {
			t.Errorf("deterministic trace %s carries wall-clock fields", tr.ID)
		}
		outcomes[tr.Outcome]++
	}
	if outcomes["miss"] != 1 || outcomes["hit"] != 1 {
		t.Errorf("outcomes = %v, want one miss and one hit", outcomes)
	}
	text := PlanMetricsText(e)
	for _, want := range []string{
		"bcast_requests_total 2",
		"bcast_cache_hits_total 1",
		"# TYPE bcast_solve_pivots summary",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("PlanMetricsText missing %q", want)
		}
	}
}
