// Command bcast-bench runs the paper-reproduction experiment harness: the
// relative-performance figures on random platforms (Figures 4(a), 4(b), 5),
// the Tiers-platform table (Table 3), and two ablations. Results are printed
// as aligned text and optionally written as CSV files (one per experiment).
//
// Examples:
//
//	bcast-bench -exp all -scale quick
//	bcast-bench -exp fig4a,table3 -scale paper -csv results/
//	bcast-bench -exp fig5 -configs 5 -seed 99
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	broadcast "repro"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment IDs or \"all\" (available: "+strings.Join(broadcast.Experiments(), ", ")+")")
		scale   = flag.String("scale", "quick", "experiment scale: quick | paper")
		seed    = flag.Int64("seed", 0, "override the base seed (0 = scale default)")
		configs = flag.Int("configs", 0, "override the number of platforms per cell (0 = scale default)")
		workers = flag.Int("workers", 0, "number of parallel workers (0 = all CPUs)")
		csvDir  = flag.String("csv", "", "also write one CSV file per experiment into this directory")
	)
	flag.Parse()

	if err := run(*exp, *scale, *seed, *configs, *workers, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-bench:", err)
		os.Exit(1)
	}
}

func run(exp, scale string, seed int64, configs, workers int, csvDir string) error {
	var cfg broadcast.ExperimentConfig
	switch scale {
	case "quick":
		cfg = broadcast.QuickExperimentConfig()
	case "paper":
		cfg = broadcast.PaperExperimentConfig()
	default:
		return fmt.Errorf("unknown scale %q (want quick or paper)", scale)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if configs > 0 {
		cfg.Configurations = configs
		cfg.TiersConfigurations = configs
	}
	cfg.Workers = workers

	ids := broadcast.Experiments()
	if exp != "all" {
		ids = strings.Split(exp, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, id := range ids {
		start := time.Now()
		table, err := broadcast.RunExperiment(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(table.Format())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if csvDir != "" {
			path := filepath.Join(csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	return nil
}
