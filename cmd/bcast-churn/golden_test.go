package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	broadcast "repro"
)

// Regenerate the golden reports after an intentional report-shape change:
//
//	go test ./cmd/bcast-churn -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// goldenChurn plays one small deterministic churn run into a temp file and
// compares it byte-for-byte against the named golden report.
func goldenChurn(t *testing.T, golden, scenario string, size int, seed int64, events int, profile string) {
	t.Helper()
	out := filepath.Join(t.TempDir(), "churn.json")
	err := run(scenario, size, seed, 0, events, profile, broadcast.LPGrowTree, "one-port",
		false, false, false, false, out, true, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", golden)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("churn report differs from %s.\nThis usually means the JSON report shape or the deterministic numbers changed.\nIf the change is intentional, regenerate with: go test ./cmd/bcast-churn -run Golden -update\ngot %d bytes, want %d bytes", path, len(got), len(want))
	}
}

// TestGoldenChurnReport pins the byte-exact JSON report of a small
// fixed-seed churn run (trace, per-event policy outcomes, summaries).
func TestGoldenChurnReport(t *testing.T) {
	goldenChurn(t, "churn_lastmile.json", "last-mile", 12, 7, 10, "")
}

// TestGoldenChurnFlakyLinksReport pins a second profile so profile-specific
// report fields stay covered.
func TestGoldenChurnFlakyLinksReport(t *testing.T) {
	goldenChurn(t, "churn_clusters_flaky.json", "cluster-of-clusters", 16, 3, 8, "flaky-links")
}
