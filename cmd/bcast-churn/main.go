// Command bcast-churn plays a deterministic churn trace against a scenario
// platform and reports how the three adaptation policies — keep the current
// broadcast tree, repair it locally, rebuild it from scratch — track the
// re-solved steady-state optimum as the platform evolves (link bandwidth
// drift, link failures and recoveries, node crashes and rejoins).
//
// The steady-state optimum is re-solved incrementally: one warm solver
// session carries the master LP and the accumulated cut pool across events
// (-cold-resolve restores per-event cold solves as the oracle). With the
// default flags the JSON report is byte-for-byte deterministic for a fixed
// (scenario, size, seed) triple.
//
// Examples:
//
//	bcast-churn -list
//	bcast-churn -scenario cluster-of-clusters -size 32 -seed 7
//	bcast-churn -scenario tiers -size 64 -events 100 -profile flaky-links -pretty
//	bcast-churn -scenario random-sparse -size 20 -cold-resolve -o churn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	broadcast "repro"
)

// output is the CLI's JSON document: the trace context plus the full
// per-event report.
type output struct {
	Scenario string                 `json:"scenario"`
	Size     int                    `json:"size"`
	Seed     int64                  `json:"seed"`
	Nodes    int                    `json:"nodes"`
	Links    int                    `json:"links"`
	Trace    *broadcast.ChurnTrace  `json:"trace"`
	Report   *broadcast.ChurnReport `json:"report"`
}

func main() {
	var (
		scenario    = flag.String("scenario", "", "scenario family to generate (see -list)")
		size        = flag.Int("size", 0, "node count (0 = the family's smallest default size)")
		seed        = flag.Int64("seed", 1, "platform seed; the trace seed is derived from it")
		source      = flag.Int("source", 0, "broadcast source processor")
		events      = flag.Int("events", 0, "churn-trace length (0 = the family's default)")
		profile     = flag.String("profile", "", "churn profile override (empty = the family's default; see -list)")
		heuristic   = flag.String("heuristic", broadcast.LPGrowTree, "tree heuristic for the initial build and the rebuild policy")
		modelName   = flag.String("model", "one-port", "evaluation port model: one-port | one-port-uni | multi-port")
		coldResolve = flag.Bool("cold-resolve", false, "re-solve the optimum from scratch at every event (oracle for the warm session)")
		coldLP      = flag.Bool("cold-lp", false, "disable warm starts inside each master LP solve as well")
		revisedLP   = flag.Bool("revised-lp", false, "solve the master LPs with the revised simplex (maintained LU basis)")
		timings     = flag.Bool("timings", false, "record wall-clock timings (makes the JSON non-deterministic)")
		out         = flag.String("o", "", "write the JSON report to this file instead of stdout")
		pretty      = flag.Bool("pretty", false, "indent the JSON output")
		quiet       = flag.Bool("quiet", false, "suppress the summary on stderr")
		list        = flag.Bool("list", false, "list churn profiles and per-family defaults, then exit")
	)
	flag.Parse()

	if *list {
		listAll()
		return
	}
	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "bcast-churn: -scenario is required (use -list to see the families)")
		os.Exit(2)
	}
	if err := run(*scenario, *size, *seed, *source, *events, *profile, *heuristic, *modelName,
		*coldResolve, *coldLP, *revisedLP, *timings, *out, *pretty, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-churn:", err)
		os.Exit(1)
	}
}

// listAll prints the churn profiles and the per-family churn defaults.
func listAll() {
	fmt.Println("churn profiles:")
	for _, name := range broadcast.ChurnProfiles() {
		prof, err := broadcast.ChurnProfileByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcast-churn:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-14s %s\n", prof.Name, prof.Description)
	}
	fmt.Println("\nscenario families (churn profile, default trace length):")
	for _, name := range broadcast.ScenarioNames() {
		s, err := broadcast.ScenarioByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcast-churn:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-20s %-14s %3d events  (sizes %v)\n",
			s.Name, s.EffectiveChurnProfile(), s.EffectiveTraceEvents(), s.DefaultSizes)
	}
}

func run(scenario string, size int, seed int64, source, events int, profileName, heuristic, modelName string,
	coldResolve, coldLP, revisedLP, timings bool, out string, pretty, quiet bool) error {
	s, err := broadcast.ScenarioByName(scenario)
	if err != nil {
		return err
	}
	if size <= 0 {
		size = s.DefaultSizes[0]
		for _, n := range s.DefaultSizes {
			if n < size {
				size = n
			}
		}
	}
	var evalModel broadcast.PortModel
	switch modelName {
	case "one-port":
		evalModel = broadcast.OnePort
	case "one-port-uni":
		evalModel = broadcast.OnePortUnidirectional
	case "multi-port":
		evalModel = broadcast.MultiPort
	default:
		return fmt.Errorf("unknown model %q (want one-port, one-port-uni or multi-port)", modelName)
	}
	profName := profileName
	if profName == "" {
		profName = s.EffectiveChurnProfile()
	}
	prof, err := broadcast.ChurnProfileByName(profName)
	if err != nil {
		return err
	}
	if events <= 0 {
		events = s.EffectiveTraceEvents()
	}

	p, err := s.Generate(size, seed)
	if err != nil {
		return err
	}
	trace, err := broadcast.GenerateChurnTrace(p, source, prof, events, broadcast.ChurnTraceSeed(seed))
	if err != nil {
		return err
	}
	cfg := broadcast.ChurnConfig{
		Heuristic:     heuristic,
		Model:         evalModel,
		ColdResolve:   coldResolve,
		RecordTimings: timings,
	}
	if coldLP || revisedLP {
		cfg.Steady = &broadcast.OptimalOptions{ColdStart: coldLP, Revised: revisedLP}
	}
	report, err := broadcast.RunChurn(p, source, trace, cfg)
	if err != nil {
		return err
	}

	doc := output{
		Scenario: scenario,
		Size:     size,
		Seed:     seed,
		Nodes:    p.NumNodes(),
		Links:    p.NumLinks(),
		Trace:    trace,
		Report:   report,
	}
	var data []byte
	if pretty {
		data, err = json.MarshalIndent(doc, "", "  ")
	} else {
		data, err = json.Marshal(doc)
	}
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
	} else if _, err := os.Stdout.Write(data); err != nil {
		return err
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "churn: %s n=%d seed=%d profile=%s events=%d heuristic=%s\n",
			scenario, size, seed, trace.Profile, len(trace.Events), report.Heuristic)
		fmt.Fprintf(os.Stderr, "steady re-solves: %d warm, %d rebuilds, %d pivots (%d warm / %d cold)\n",
			report.LP.WarmResolves, report.LP.Rebuilds,
			report.LP.WarmPivots+report.LP.ColdPivots, report.LP.WarmPivots, report.LP.ColdPivots)
		for _, sum := range report.Summary {
			fmt.Fprintf(os.Stderr, "  %-8s ratio %.3f (min %.3f)  delivered %.1f  lost %.1f",
				sum.Policy, sum.MeanRatio, sum.MinRatio, sum.DeliveredSlices, sum.LostSlices)
			if sum.BrokenEvents > 0 {
				fmt.Fprintf(os.Stderr, "  broken %dx", sum.BrokenEvents)
			}
			if sum.Reattached > 0 {
				fmt.Fprintf(os.Stderr, "  reattached %d", sum.Reattached)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	return nil
}
