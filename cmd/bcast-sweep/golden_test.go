package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate the golden reports after an intentional report-shape change:
//
//	go test ./cmd/bcast-sweep -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// goldenSweep runs one small deterministic sweep into a temp file and
// compares it byte-for-byte against the named golden report.
func goldenSweep(t *testing.T, golden string, scenarios, sizes, heuristics string, reps int, seed int64, churn bool, packTrees int) {
	t.Helper()
	out := filepath.Join(t.TempDir(), "sweep.json")
	err := run(scenarios, sizes, heuristics, reps, seed, 0, "one-port", 2, false, false, packTrees,
		churn, 6, "", "", false, out, true, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", golden)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sweep report differs from %s.\nThis usually means the JSON report shape or the deterministic numbers changed.\nIf the change is intentional, regenerate with: go test ./cmd/bcast-sweep -run Golden -update\ngot %d bytes, want %d bytes", path, len(got), len(want))
	}
}

// TestGoldenSweepReport pins the byte-exact JSON report of a small
// fixed-seed sweep, so report-shape regressions (renamed fields, reordered
// runs, float formatting drift) are caught before consumers see them.
func TestGoldenSweepReport(t *testing.T) {
	goldenSweep(t, "sweep_star_chain.json", "star,chain", "8", "prune-simple,lp-grow-tree", 2, 7, false, 0)
}

// TestGoldenSweepChurnReport pins the report with the churn dimension
// enabled (per-run churn outcomes plus per-cell churn aggregates).
func TestGoldenSweepChurnReport(t *testing.T) {
	goldenSweep(t, "sweep_churn_lastmile.json", "last-mile", "10", "lp-grow-tree", 1, 11, true, 0)
}

// TestGoldenSweepPackReport pins the report with the k-tree packing axis
// enabled (packed throughput / tree count / gain columns on runs, packed
// means on aggregates).
func TestGoldenSweepPackReport(t *testing.T) {
	goldenSweep(t, "sweep_pack_ring_grid.json", "ring,grid", "9", "prune-simple,lp-grow-tree", 2, 7, false, 32)
}
