// Command bcast-sweep runs the scenario sweep engine: it generates platforms
// from the named scenario families of the registry, evaluates every
// requested heuristic on each of them (throughput, relative performance
// against the one-port MTP optimum, optional wall time), and emits the full
// report as JSON. With the default flags the JSON output is byte-for-byte
// deterministic for a given seed.
//
// Examples:
//
//	bcast-sweep -list
//	bcast-sweep -scenarios all -reps 3 -seed 7
//	bcast-sweep -scenarios star,chain,tiers -sizes 16,32 -heuristics one-port
//	bcast-sweep -scenarios cluster-of-clusters -model multi-port -timings -pretty
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	broadcast "repro"
)

func main() {
	var (
		scenarioList = flag.String("scenarios", "all", "comma-separated scenario names or \"all\"")
		sizeList     = flag.String("sizes", "", "comma-separated node counts (empty = each scenario's defaults)")
		heurList     = flag.String("heuristics", "all", "comma-separated heuristic names, \"all\", \"one-port\" or \"multi-port\"")
		reps         = flag.Int("reps", 3, "platforms generated per (scenario, size) cell")
		seed         = flag.Int64("seed", 1, "base seed (per-platform seeds are derived from it)")
		source       = flag.Int("source", 0, "broadcast source processor")
		modelName    = flag.String("model", "one-port", "evaluation port model: one-port | one-port-uni | multi-port")
		workers      = flag.Int("workers", 0, "number of parallel workers (0 = all CPUs)")
		coldLP       = flag.Bool("cold-lp", false, "re-solve the steady-state master LP from scratch every cutting-plane round (A/B oracle for the warm-started default)")
		revisedLP    = flag.Bool("revised-lp", false, "solve the steady-state master LPs with the revised simplex (maintained LU basis; recommended for sizes >= 256)")
		packTrees    = flag.Int("pack", 0, "decompose the optimal edge rates into a weighted packing of at most this many broadcast trees (0 = off); adds the packed throughput, tree count and k-tree vs single-tree gain to every run")
		churn        = flag.Bool("churn", false, "also play every platform through its family's churn trace (keep/repair/rebuild vs re-solved optimum)")
		churnEvents  = flag.Int("churn-events", 0, "churn-trace length (0 = per-family defaults; see -list)")
		churnProfile = flag.String("churn-profile", "", "churn profile override (empty = per-family defaults; see -list)")
		churnHeur    = flag.String("churn-heuristic", "", "tree heuristic driven through the churn traces (default lp-grow-tree)")
		timings      = flag.Bool("timings", false, "record wall-clock timings (makes the JSON non-deterministic)")
		out          = flag.String("o", "", "write the JSON report to this file instead of stdout")
		pretty       = flag.Bool("pretty", false, "indent the JSON output")
		quiet        = flag.Bool("quiet", false, "suppress the progress and summary output on stderr")
		list         = flag.Bool("list", false, "list the registered scenario families and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range broadcast.ScenarioNames() {
			s, err := broadcast.ScenarioByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bcast-sweep:", err)
				os.Exit(1)
			}
			large := ""
			if len(s.LargeSizes) > 0 {
				large = fmt.Sprintf(", large sizes %v (use -revised-lp)", s.LargeSizes)
			}
			fmt.Printf("%-20s %s (min size %d, default sizes %v%s; churn %s, %d events)\n",
				s.Name, s.Description, s.MinSize, s.DefaultSizes, large, s.EffectiveChurnProfile(), s.EffectiveTraceEvents())
		}
		fmt.Println("\nchurn profiles (for -churn-profile):")
		for _, name := range broadcast.ChurnProfiles() {
			prof, err := broadcast.ChurnProfileByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bcast-sweep:", err)
				os.Exit(1)
			}
			fmt.Printf("  %-14s %s\n", prof.Name, prof.Description)
		}
		return
	}

	if err := run(*scenarioList, *sizeList, *heurList, *reps, *seed, *source, *modelName, *workers, *coldLP, *revisedLP, *packTrees,
		*churn, *churnEvents, *churnProfile, *churnHeur, *timings, *out, *pretty, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-sweep:", err)
		os.Exit(1)
	}
}

func run(scenarioList, sizeList, heurList string, reps int, seed int64, source int, modelName string, workers int, coldLP, revisedLP bool, packTrees int,
	churn bool, churnEvents int, churnProfile, churnHeur string, timings bool, out string, pretty, quiet bool) error {
	cfg := broadcast.SweepConfig{
		Repetitions:    reps,
		Seed:           seed,
		Source:         source,
		Workers:        workers,
		ColdStartLP:    coldLP,
		RevisedLP:      revisedLP,
		PackTrees:      packTrees,
		Churn:          churn,
		ChurnEvents:    churnEvents,
		ChurnProfile:   churnProfile,
		ChurnHeuristic: churnHeur,
		RecordTimings:  timings,
	}

	if scenarioList != "all" {
		cfg.Scenarios = splitList(scenarioList)
	}
	var err error
	if cfg.Sizes, err = parseSizes(sizeList); err != nil {
		return err
	}
	switch heurList {
	case "all":
	case "one-port":
		cfg.Heuristics = broadcast.OnePortHeuristics()
	case "multi-port":
		cfg.Heuristics = broadcast.MultiPortHeuristics()
	default:
		cfg.Heuristics = splitList(heurList)
	}
	switch modelName {
	case "one-port":
		cfg.EvalModel = broadcast.OnePort
	case "one-port-uni":
		cfg.EvalModel = broadcast.OnePortUnidirectional
	case "multi-port":
		cfg.EvalModel = broadcast.MultiPort
	default:
		return fmt.Errorf("unknown model %q (want one-port, one-port-uni or multi-port)", modelName)
	}
	if !quiet {
		cfg.OnResult = func(r broadcast.SweepRun) {
			if r.Error != "" {
				fmt.Fprintf(os.Stderr, "%-20s n=%-4d rep=%d %-22s ERROR %s\n", r.Scenario, r.Size, r.Rep, r.Heuristic, r.Error)
				return
			}
			fmt.Fprintf(os.Stderr, "%-20s n=%-4d rep=%d %-22s ratio %.3f\n", r.Scenario, r.Size, r.Rep, r.Heuristic, r.Ratio)
		}
	}

	report, err := broadcast.RunSweep(cfg)
	if err != nil {
		return err
	}

	var data []byte
	if pretty {
		data, err = json.MarshalIndent(report, "", "  ")
	} else {
		data, err = json.Marshal(report)
	}
	if err != nil {
		return err
	}
	data = append(data, '\n')

	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %s (%d runs)\n", out, report.Meta.TotalRuns)
		}
	} else {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	}
	if !quiet {
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, report.Format())
	}
	return nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var sizes []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
