// Command platform-gen generates heterogeneous platform descriptions (JSON)
// for use with bcast-tree and for inspection. It exposes the generators used
// by the paper's evaluation: random platforms (Table 2), Tiers-like
// hierarchical platforms (Table 3), and a cluster-of-clusters scenario.
//
// Examples:
//
//	platform-gen -type random -nodes 30 -density 0.12 -seed 7 -o platform.json
//	platform-gen -type tiers30 -seed 3
//	platform-gen -type cluster
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	broadcast "repro"
)

func main() {
	var (
		kind    = flag.String("type", "random", "platform type: random | tiers30 | tiers65 | cluster")
		nodes   = flag.Int("nodes", 30, "number of nodes (random platforms)")
		density = flag.Float64("density", 0.12, "link density (random platforms)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default: stdout)")
		pretty  = flag.Bool("pretty", true, "indent the JSON output")
	)
	flag.Parse()

	p, err := generate(*kind, *nodes, *density, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "platform-gen:", err)
		os.Exit(1)
	}

	var data []byte
	if *pretty {
		data, err = json.MarshalIndent(p, "", "  ")
	} else {
		data, err = json.Marshal(p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "platform-gen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')

	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "platform-gen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %s\n", *out, p.String())
}

func generate(kind string, nodes int, density float64, seed int64) (*broadcast.Platform, error) {
	switch kind {
	case "random":
		return broadcast.RandomPlatform(nodes, density, seed)
	case "tiers30":
		return broadcast.TiersPlatform(broadcast.Tiers30Config(), seed)
	case "tiers65":
		return broadcast.TiersPlatform(broadcast.Tiers65Config(), seed)
	case "cluster":
		return broadcast.ClusterPlatform(broadcast.DefaultClusterConfig(), seed)
	default:
		return nil, fmt.Errorf("unknown platform type %q (want random, tiers30, tiers65 or cluster)", kind)
	}
}
