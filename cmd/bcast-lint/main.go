// Command bcast-lint runs the repository's custom static-analysis suite
// (internal/analysis): detrand, ctxflow, lockguard and senterr, the four
// analyzers that machine-check the invariants PRs 1–6 established by hand
// (deterministic reports, a cancelable solve path, lock-guarded service
// counters, wrappable sentinel errors).
//
// Usage:
//
//	go run ./cmd/bcast-lint [flags] [packages]
//
// Packages default to ./... (the whole module). The exit status is 0 when
// the tree is clean, 1 when any analyzer reported a finding, and 2 when
// loading or analysis itself failed. CI runs it as a required job; see the
// "Linting" section of the README.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the analyzers and exit")
		only     = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		withTest = flag.Bool("tests", false, "also lint _test.go files (off by default: tests deliberately use ad-hoc RNGs and wall clocks)")
	)
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "bcast-lint: unknown analyzer %q (have: %s)\n", name, analyzerNames(suite))
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcast-lint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcast-lint:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *withTest
	pkgs, err := loader.LoadPatterns(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcast-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(suite, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcast-lint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "bcast-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "bcast-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}

func analyzerNames(as []*analysis.Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
