// Command bcast-promcheck probes the observability surface of a running
// bcast-serve: it scrapes GET /metrics and validates the body against the
// Prometheus text exposition format (the same validator the unit tests
// use — well-formed names, no duplicate or interleaved families, parsable
// sample values), fetches GET /v1/trace and requires a minimum number of
// buffered request traces, and optionally probes an opt-in pprof listener
// on its separate port. CI's observability smoke job boots a server,
// drives it with cmd/bcast-load, and then runs this check; any violation
// exits non-zero with a one-line reason.
//
// Examples:
//
//	bcast-promcheck -url http://127.0.0.1:8080
//	bcast-promcheck -url http://127.0.0.1:8080 -min-traces 30 -pprof http://127.0.0.1:6060
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

// requiredFamilies are metric families every healthy scrape must expose:
// a core engine counter, an overload-contract counter and a solve-stage
// summary — one sentinel per metric group, not the full name table (the
// unit tests pin that).
var requiredFamilies = []string{
	"bcast_requests_total",
	"bcast_shed_total",
	"bcast_solve_pivots",
}

func main() {
	var (
		baseURL   = flag.String("url", "http://127.0.0.1:8080", "base URL of the bcast-serve instance to probe")
		pprofURL  = flag.String("pprof", "", "base URL of the server's pprof listener (empty = skip the pprof probe)")
		minTraces = flag.Int("min-traces", 1, "minimum number of buffered traces GET /v1/trace must report")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	if err := run(client, *baseURL, *pprofURL, *minTraces); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-promcheck:", err)
		os.Exit(1)
	}
}

func run(client *http.Client, baseURL, pprofURL string, minTraces int) error {
	body, err := fetch(client, baseURL+"/metrics")
	if err != nil {
		return err
	}
	samples, err := obs.ValidateExposition(string(body))
	if err != nil {
		return fmt.Errorf("GET /metrics is not valid Prometheus text exposition: %w", err)
	}
	for _, fam := range requiredFamilies {
		if !strings.Contains(string(body), "# TYPE "+fam+" ") {
			return fmt.Errorf("GET /metrics is missing the %s family", fam)
		}
	}
	fmt.Printf("metrics ok: %d samples, all required families present\n", samples)

	tbody, err := fetch(client, baseURL+"/v1/trace")
	if err != nil {
		return err
	}
	var env struct {
		Count  int          `json:"count"`
		Traces []*obs.Trace `json:"traces"`
	}
	if err := json.Unmarshal(tbody, &env); err != nil {
		return fmt.Errorf("GET /v1/trace did not return the trace envelope: %w", err)
	}
	if env.Count < minTraces || len(env.Traces) < minTraces {
		return fmt.Errorf("GET /v1/trace holds %d traces, want at least %d", env.Count, minTraces)
	}
	for _, tr := range env.Traces {
		if tr.ID == "" || tr.Outcome == "" || len(tr.Events) == 0 {
			return fmt.Errorf("GET /v1/trace returned a malformed trace: %+v", tr)
		}
	}
	fmt.Printf("traces ok: %d buffered, most recent %s (%s)\n", env.Count, env.Traces[0].ID, env.Traces[0].Outcome)

	if pprofURL != "" {
		pbody, err := fetch(client, pprofURL+"/debug/pprof/cmdline")
		if err != nil {
			return err
		}
		if len(pbody) == 0 {
			return fmt.Errorf("pprof cmdline probe returned an empty body")
		}
		fmt.Println("pprof ok: cmdline endpoint answered")
	}
	return nil
}

// fetch GETs a URL and returns the body, treating any non-200 as an error.
func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("GET %s: reading body: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}
