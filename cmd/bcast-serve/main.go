// Command bcast-serve runs the broadcast-planning service: an HTTP/JSON
// server around the fingerprint-keyed planning engine. Repeated or
// near-duplicate platforms are answered from the plan cache (and warm solver
// sessions) instead of being re-solved from scratch.
//
// Endpoints:
//
//	POST /v1/plan      plan a platform (or mutate a cached one: base+deltas)
//	POST /v1/evaluate  compare tree heuristics against the optimum
//	POST /v1/churn     replay a churn trace (keep/repair/rebuild policies)
//	GET  /v1/stats     cache and solver statistics
//	GET  /v1/metrics   engine counters + per-endpoint latency quantiles (JSON)
//	GET  /metrics      the same counters in Prometheus text exposition format
//	GET  /v1/trace     recent request traces (?outcome=hit|miss|shed|..., ?limit=)
//	GET  /healthz      liveness probe
//
// Errors are always structured {"error": ...} JSON — malformed bodies get
// 400s, handler panics recovered 500s, never an empty reply. Under overload
// the server stays predictable instead of queueing without bound: solves run
// under a deadline (-deadline, or per-request deadlineMs) and time out with a
// 504, and once the solve lanes plus the admission queue (-queue) are full,
// further cold requests are shed with a 429 and a Retry-After header. Clients
// may also pass "degraded": true to get an immediate heuristic plan while the
// LP refinement continues in the background. Use cmd/bcast-load to drive a
// running server with deterministic workload mixes and measure it.
//
// Observability: every request is traced (typed spans: cache lookup,
// admission, queue wait, LP solve with pivot/round/cut counts, degraded
// answer, background refinement, response write) into a bounded ring buffer
// (-trace-buffer) served by GET /v1/trace, and the response carries the
// request-scoped trace ID in an X-Bcast-Trace header. Request and panic logs
// are structured log/slog JSON on stderr with the same trace IDs. -pprof
// exposes net/http/pprof on a separate listener, kept off the service port so
// profiling endpoints are never reachable from the public address.
//
// Examples:
//
//	bcast-serve -addr :8080 -cache 512
//	bcast-serve -self-check
//	bcast-serve -pprof 127.0.0.1:6060
//	curl -s localhost:8080/v1/plan -d '{"platform": {...}, "source": 0}'
//	curl -s localhost:8080/metrics
//	curl -s 'localhost:8080/v1/trace?outcome=miss&limit=10'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"time"

	broadcast "repro"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheSize   = flag.Int("cache", 256, "maximum number of cached plans")
		workers     = flag.Int("workers", 0, "maximum concurrent solves (0 = all CPUs)")
		queue       = flag.Int("queue", -1, "admission queue depth beyond the solve lanes; above it cold requests are shed with 429 (-1 = 4x workers, 0 = unbounded, never shed)")
		deadline    = flag.Duration("deadline", 2*time.Minute, "default solve deadline per request, overridable per request via deadlineMs (0 = none)")
		coldLP      = flag.Bool("cold-lp", false, "disable warm starts inside the master LP solves")
		revisedLP   = flag.Bool("revised-lp", false, "solve the master LPs with the revised simplex (maintained LU basis)")
		traceBuffer = flag.Int("trace-buffer", 512, "request traces retained for GET /v1/trace (0 disables tracing)")
		pprofAddr   = flag.String("pprof", "", "listen address for net/http/pprof (empty = profiling disabled); keep it on localhost")
		quiet       = flag.Bool("quiet", false, "disable structured request logging (panic logs are kept)")
		selfCheck   = flag.Bool("self-check", false, "plan a generated platform twice against the in-process engine, verify the cache hit, and exit")
	)
	flag.Parse()

	lanes := *workers
	if lanes <= 0 {
		lanes = runtime.NumCPU()
	}
	depth := *queue
	if depth < 0 {
		depth = 4 * lanes
	}
	cfg := service.Config{
		CacheSize:       *cacheSize,
		Workers:         *workers,
		QueueDepth:      depth,
		DefaultDeadline: *deadline,
	}
	if *coldLP || *revisedLP {
		cfg.Steady = &broadcast.OptimalOptions{ColdStart: *coldLP, Revised: *revisedLP}
	}
	if *traceBuffer > 0 {
		// The server traces in WallClock mode: per-process trace IDs minted
		// at the HTTP layer, timestamps and queue-wait spans recorded. The
		// deterministic mode exists for in-process replays (internal/load).
		cfg.Tracer = obs.NewTracer(obs.Options{Capacity: *traceBuffer, WallClock: true})
	}
	engine := service.New(cfg)

	if *selfCheck {
		if err := runSelfCheck(engine); err != nil {
			fmt.Fprintln(os.Stderr, "bcast-serve: self-check failed:", err)
			os.Exit(1)
		}
		return
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	handlerLogger := logger
	if *quiet {
		handlerLogger = nil
	}

	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: pprofMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "err", err.Error())
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandlerOpts(engine, service.HandlerOptions{Logger: handlerLogger}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		// Backstop only: solves are bounded by the engine's deadline (the
		// -deadline default or the request's deadlineMs), which produces a
		// structured 504. The write timeout merely severs a connection whose
		// handler somehow outlived that contract.
		WriteTimeout: 5 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	logger.Info("listening",
		"addr", *addr,
		"cache", *cacheSize,
		"workers", engine.Stats().Workers,
		"queue", depth,
		"deadline", deadline.String(),
		"traceBuffer", *traceBuffer,
		"pprof", *pprofAddr)
	err := srv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "bcast-serve:", err)
		os.Exit(1)
	}
	// ListenAndServe returns as soon as Shutdown starts; wait for the drain
	// of in-flight requests to actually finish before exiting.
	stop()
	<-drained
}

// runSelfCheck exercises the engine end to end without binding a port: plan
// a platform twice (the second answer must come from the cache with
// byte-identical plan bytes), then plan a one-delta mutation through the
// warm-session path, and print the engine counters — the overload-contract
// ones included, so a zero-shed healthy run is visibly zero-shed.
func runSelfCheck(engine *service.Engine) error {
	p, err := broadcast.GenerateScenario("cluster-of-clusters", 24, 1)
	if err != nil {
		return err
	}
	req := service.PlanRequest{Platform: p, Source: 0, Heuristic: broadcast.LPGrowTree}
	first, err := engine.Plan(req)
	if err != nil {
		return err
	}
	second, err := engine.Plan(req)
	if err != nil {
		return err
	}
	if !second.Cached {
		return fmt.Errorf("repeated request missed the cache")
	}
	if string(first.JSON) != string(second.JSON) {
		return fmt.Errorf("cache hit returned different plan bytes")
	}
	mut, err := engine.Plan(service.PlanRequest{
		Base:      first.Plan.Fingerprint,
		Deltas:    []broadcast.Delta{{Kind: broadcast.DeltaScaleLink, Link: 0, Factor: 1.5}},
		Source:    0,
		Heuristic: broadcast.LPGrowTree,
	})
	if err != nil {
		return err
	}
	if !mut.WarmResolved {
		return fmt.Errorf("delta request did not take the warm-session path")
	}
	engine.Drain()
	st := engine.Stats()
	fmt.Printf("self-check ok: throughput %.6f, mutated %.6f (warm resolve: %v); %d hits / %d misses, %d solves\n",
		first.Plan.Throughput, mut.Plan.Throughput, mut.WarmResolved, st.Hits, st.Misses, st.Solves)
	fmt.Printf("self-check overload counters: shed %d, queued %d, canceled %d, degraded %d, refines %d, refineFailures %d, evictionsDeferred %d, queueDepth %d\n",
		st.Shed, st.Queued, st.Canceled, st.Degraded, st.Refines, st.RefineFailures, st.EvictionsDeferred, st.QueueDepth)
	if second.TraceID != "" {
		fmt.Printf("self-check tracing: cache-hit trace %s recorded (%d traces buffered)\n",
			second.TraceID, engine.Tracer().Len())
	}
	return nil
}
