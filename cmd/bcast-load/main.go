// Command bcast-load generates and replays deterministic, seeded workloads
// against the broadcast-planning service: zipfian-skewed fingerprint
// popularity, interleaved base+delta churn lineages, renumbered-twin
// duplicates, cold-miss floods and overload storms (cold misses beyond the
// engine's lanes+queue capacity, proving sheds, hit-latency isolation and
// degraded-mode answers), at an optional target request rate with a bounded
// worker pool.
//
// By default the replay runs in-process against a fresh planning engine and
// writes the canonical JSON report (per-phase p50/p90/p99 latency on the
// deterministic virtual clock, throughput in requests per kilotick, cache
// hit/miss/twin/singleflight counters) — byte-identical for a fixed
// (-mix, -seed) across runs and worker counts. -url replays against a
// running bcast-serve instead; -timings adds the wall-clock section (real
// latency histograms, requests/second), which is not byte-stable.
//
// Examples:
//
//	bcast-load -list
//	bcast-load -mix smoke -seed 7 -o BENCH_load.json -pretty
//	bcast-load -mix mixed -workers 8 -timings
//	bcast-load -mix overload -o BENCH_overload.json
//	bcast-load -mix cold-flood -url http://localhost:8080 -rate 50 -timings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/load"
)

func main() {
	var (
		mixName = flag.String("mix", "smoke", "workload mix to replay (see -list)")
		seed    = flag.Int64("seed", 1, "workload seed (platforms, zipf draws, churn deltas, renumberings)")
		workers = flag.Int("workers", 0, "concurrent requests per wave (0 = all CPUs); never changes the canonical report")
		rate    = flag.Float64("rate", 0, "target request rate per second (0 = unpaced); never changes the canonical report")
		url     = flag.String("url", "", "replay against a running bcast-serve at this base URL instead of in-process")
		cache   = flag.Int("cache", 0, "in-process plan-cache capacity (0 = sized to the workload, eviction-free)")
		timings = flag.Bool("timings", false, "add the wall-clock timings section (makes the JSON non-deterministic)")
		out     = flag.String("o", "", "write the JSON report to this file instead of stdout")
		pretty  = flag.Bool("pretty", false, "indent the JSON output")
		quiet   = flag.Bool("quiet", false, "suppress the summary on stderr")
		list    = flag.Bool("list", false, "list the built-in mixes, then exit")
	)
	flag.Parse()

	if *list {
		listMixes()
		return
	}
	if err := run(*mixName, *seed, *workers, *rate, *url, *cache, *timings, *out, *pretty, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-load:", err)
		os.Exit(1)
	}
}

// listMixes prints every built-in mix with its phase plan.
func listMixes() {
	for _, m := range load.Mixes() {
		fmt.Printf("%-16s %s\n", m.Name, m.Description)
		for _, ph := range m.Phases {
			detail := ""
			switch ph.Kind {
			case load.KindZipf:
				detail = fmt.Sprintf("%d requests over %d platforms, skew %.2f", ph.Requests, ph.Platforms, ph.Skew)
			case load.KindLineage:
				detail = fmt.Sprintf("%d lineages x %d deltas", ph.Lineages, ph.Depth)
			case load.KindTwins:
				detail = fmt.Sprintf("%d platforms + twins, %d dupes each", ph.Platforms, ph.Dupes)
			case load.KindFlood:
				detail = fmt.Sprintf("%d bursts x %d identical requests", ph.Platforms, ph.Burst)
			case load.KindOverload:
				detail = fmt.Sprintf("%d cold vs %d lanes + %d queue (%d shed), %d hits over %d hot, %d degraded",
					ph.Cold, ph.Lanes, ph.Queue, ph.Cold-ph.Lanes-ph.Queue, ph.Hits, ph.Hot, ph.Degraded)
			}
			fmt.Printf("  %-16s %-8s size %-3d %-30v %s\n", ph.Name, ph.Kind, ph.Size, ph.Scenarios, detail)
		}
	}
}

func run(mixName string, seed int64, workers int, rate float64, url string, cache int,
	timings bool, out string, pretty, quiet bool) error {
	mix, err := load.MixByName(mixName)
	if err != nil {
		return err
	}
	sched, err := load.Compile(mix, seed)
	if err != nil {
		return err
	}

	opts := load.Options{Workers: workers, Rate: rate, WallClock: timings}
	var target load.Planner
	if url != "" {
		target = load.NewHTTPPlanner(url)
	} else {
		engine, gate := load.NewInProcessEngine(sched, cache)
		target = engine
		opts.Gate = gate
	}

	rep, err := load.Run(target, sched, opts)
	if err != nil {
		return err
	}

	var data []byte
	if pretty {
		data, err = json.MarshalIndent(rep, "", "  ")
	} else {
		data, err = json.Marshal(rep)
	}
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
	} else if _, err := os.Stdout.Write(data); err != nil {
		return err
	}

	if !quiet {
		fmt.Fprint(os.Stderr, rep.Summary())
	}
	if rep.Total.Client.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed (first: %v)",
			rep.Total.Client.Errors, rep.Total.Requests, rep.Total.Client.ErrorSamples)
	}
	return nil
}
