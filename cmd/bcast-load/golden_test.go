package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate the golden report after an intentional report-shape change:
//
//	go test ./cmd/bcast-load -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// goldenLoad replays one mix into a temp file and compares it byte-for-byte
// against the named golden report.
func goldenLoad(t *testing.T, golden, mix string, seed int64, workers int) {
	t.Helper()
	out := filepath.Join(t.TempDir(), "load.json")
	err := run(mix, seed, workers, 0, "", 0, false, out, true, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", golden)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("load report differs from %s.\nThis usually means the JSON report shape or the deterministic numbers changed.\nIf the change is intentional, regenerate with: go test ./cmd/bcast-load -run Golden -update\ngot %d bytes, want %d bytes", path, len(got), len(want))
	}
}

// TestGoldenLoadReport pins the byte-exact canonical BENCH_load.json of the
// smoke mix. The same report must come out for every worker count — the
// acceptance property of the load subsystem — so the golden is checked at
// two pool sizes.
func TestGoldenLoadReport(t *testing.T) {
	goldenLoad(t, "load_smoke.json", "smoke", 7, 1)
	goldenLoad(t, "load_smoke.json", "smoke", 7, 6)
}
