// Command bcast-tree builds broadcast trees on one platform and compares the
// paper's heuristics against the optimal multiple-tree (MTP) throughput.
//
// The platform is either loaded from a JSON file produced by platform-gen or
// generated on the fly. For every selected heuristic the command prints the
// steady-state throughput, the relative performance with respect to the MTP
// optimum, and (optionally) the throughput measured by a slice-by-slice
// simulation.
//
// Examples:
//
//	bcast-tree -platform platform.json -source 0
//	bcast-tree -random 30,0.12 -seed 3 -heuristic grow-tree -simulate 500
//	bcast-tree -random 20,0.2 -model multiport
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	broadcast "repro"
)

func main() {
	var (
		platformFile = flag.String("platform", "", "platform JSON file (from platform-gen)")
		random       = flag.String("random", "", "generate a random platform: \"nodes,density\"")
		seed         = flag.Int64("seed", 1, "seed for -random")
		source       = flag.Int("source", 0, "broadcast source processor")
		heuristic    = flag.String("heuristic", "all", "heuristic name or \"all\"")
		portModel    = flag.String("model", "oneport", "evaluation model: oneport | multiport")
		simulate     = flag.Int("simulate", 0, "also simulate this many slices per tree (0 = off)")
		showTree     = flag.Bool("tree", false, "print the parent array of each tree")
	)
	flag.Parse()

	if err := run(*platformFile, *random, *seed, *source, *heuristic, *portModel, *simulate, *showTree); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-tree:", err)
		os.Exit(1)
	}
}

func run(platformFile, random string, seed int64, source int, heuristic, portModel string, simulate int, showTree bool) error {
	p, err := loadPlatform(platformFile, random, seed)
	if err != nil {
		return err
	}
	var m broadcast.PortModel
	switch portModel {
	case "oneport":
		m = broadcast.OnePort
	case "multiport":
		m = broadcast.MultiPort
	default:
		return fmt.Errorf("unknown model %q (want oneport or multiport)", portModel)
	}

	names := broadcast.Heuristics()
	if heuristic != "all" {
		names = []string{heuristic}
	}

	opt, err := broadcast.OptimalThroughput(p, source)
	if err != nil {
		return err
	}
	fmt.Printf("platform: %s\n", p.String())
	fmt.Printf("source: %d, model: %s\n", source, m)
	fmt.Printf("MTP optimal throughput (one-port LP bound): %.4f slices/time-unit\n\n", opt.Throughput)
	fmt.Printf("%-26s %12s %10s", "heuristic", "throughput", "ratio")
	if simulate > 0 {
		fmt.Printf(" %12s", "simulated")
	}
	fmt.Println()

	for _, name := range names {
		tree, err := broadcast.BuildTreeWithRates(p, source, name, opt.EdgeRate)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		var tp float64
		if name == broadcast.Binomial {
			// Evaluate the binomial schedule with routing contention, as the
			// paper does.
			routing, err := broadcast.BuildRouting(p, source, name)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			tp = broadcast.RoutingThroughput(p, routing, m)
		} else {
			tp = broadcast.TreeThroughput(p, tree, m)
		}
		fmt.Printf("%-26s %12.4f %9.1f%%", broadcast.HeuristicLabel(name), tp, 100*tp/opt.Throughput)
		if simulate > 0 {
			if name == broadcast.Binomial {
				// The simulator works on plain trees; the binomial column
				// above is the routed MPI schedule, so no simulation is shown.
				fmt.Printf(" %12s", "-")
			} else {
				res, err := broadcast.Simulate(p, tree, m, simulate)
				if err != nil {
					return fmt.Errorf("%s: simulate: %w", name, err)
				}
				fmt.Printf(" %12.4f", res.SteadyThroughput)
			}
		}
		fmt.Println()
		if showTree {
			fmt.Printf("    parents: %v\n", tree.Parent)
		}
	}
	return nil
}

func loadPlatform(platformFile, random string, seed int64) (*broadcast.Platform, error) {
	switch {
	case platformFile != "" && random != "":
		return nil, fmt.Errorf("use either -platform or -random, not both")
	case platformFile != "":
		data, err := os.ReadFile(platformFile)
		if err != nil {
			return nil, err
		}
		var p broadcast.Platform
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", platformFile, err)
		}
		return &p, nil
	case random != "":
		parts := strings.Split(random, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("-random wants \"nodes,density\", got %q", random)
		}
		nodes, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("parsing nodes: %w", err)
		}
		density, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing density: %w", err)
		}
		return broadcast.RandomPlatform(nodes, density, seed)
	default:
		return nil, fmt.Errorf("either -platform or -random is required")
	}
}
