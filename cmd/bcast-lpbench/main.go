// Command bcast-lpbench benchmarks the two warm-started master-LP solvers
// against each other on the cutting-plane steady-state solve: the revised
// simplex with a maintained sparse LU basis (lp.Revised) versus the dense
// incremental tableau solver (lp.Incremental), across a ladder of platform
// sizes. For every size it reports throughput, cutting-plane rounds, cut
// counts, simplex pivots and the wall time spent inside master LP solves
// (Solution.LPWallNanos), plus the revised-over-incremental speedup — the
// artifact CI publishes as BENCH_lp.json.
//
// The run doubles as a differential check: the two solvers must agree on the
// optimal throughput within 1e-6 relative at every size, and -min-speedup
// (applied at sizes >= -speedup-from) turns the performance contract into a
// hard exit code.
//
// Examples:
//
//	bcast-lpbench -sizes 96,256 -pretty
//	bcast-lpbench -sizes 96,256,512,1024 -min-speedup 5 -o BENCH_lp.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/platform"
	"repro/internal/scenarios"
	"repro/internal/steady"
)

// solverReport is one solver's side of a size cell.
type solverReport struct {
	Throughput float64 `json:"throughput"`
	Rounds     int     `json:"rounds"`
	Cuts       int     `json:"cuts"`
	Pivots     int     `json:"pivots"`
	LPWallNs   int64   `json:"lpWallNs"`
	TotalNs    int64   `json:"totalNs"`
	PerPivotNs float64 `json:"perPivotNs"`
}

// sizeReport is the revised-vs-incremental comparison at one platform size.
type sizeReport struct {
	N               int          `json:"n"`
	Nodes           int          `json:"nodes"`
	Links           int          `json:"links"`
	Revised         solverReport `json:"revised"`
	Incremental     solverReport `json:"incremental"`
	ThroughputDiff  float64      `json:"throughputDiff"`
	LPWallSpeedup   float64      `json:"lpWallSpeedup"`
	PerPivotSpeedup float64      `json:"perPivotSpeedup"`
}

// report is the whole BENCH_lp.json document.
type report struct {
	Scenario string       `json:"scenario"`
	Seed     int64        `json:"seed"`
	Source   int          `json:"source"`
	Sizes    []sizeReport `json:"sizes"`
}

func main() {
	var (
		scenarioName = flag.String("scenario", scenarios.NameClusters, "scenario family to generate the platforms from")
		sizeList     = flag.String("sizes", "96,256,512,1024", "comma-separated platform sizes")
		seed         = flag.Int64("seed", 7, "platform generation seed")
		source       = flag.Int("source", 0, "broadcast source node")
		minSpeedup   = flag.Float64("min-speedup", 0, "fail unless the revised LP-wall speedup reaches this factor at sizes >= -speedup-from (0 = report only)")
		speedupFrom  = flag.Int("speedup-from", 512, "smallest size the -min-speedup contract applies to")
		out          = flag.String("o", "", "write the JSON report to this file instead of stdout")
		pretty       = flag.Bool("pretty", false, "indent the JSON output")
		quiet        = flag.Bool("quiet", false, "suppress the per-size progress lines on stderr")
	)
	flag.Parse()

	if err := run(*scenarioName, *sizeList, *seed, *source, *minSpeedup, *speedupFrom, *out, *pretty, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-lpbench:", err)
		os.Exit(1)
	}
}

func run(scenarioName, sizeList string, seed int64, source int, minSpeedup float64, speedupFrom int, out string, pretty, quiet bool) error {
	s, err := scenarios.Get(scenarioName)
	if err != nil {
		return err
	}
	var sizes []int
	for _, f := range strings.Split(sizeList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad size %q", f)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("no sizes given")
	}

	rep := report{Scenario: scenarioName, Seed: seed, Source: source}
	for _, n := range sizes {
		p, err := s.Generate(n, seed)
		if err != nil {
			return fmt.Errorf("generate n=%d: %w", n, err)
		}
		rev, err := solveOnce(p, source, &steady.Options{Revised: true})
		if err != nil {
			return fmt.Errorf("revised n=%d: %w", n, err)
		}
		inc, err := solveOnce(p, source, nil)
		if err != nil {
			return fmt.Errorf("incremental n=%d: %w", n, err)
		}
		cell := sizeReport{
			N:              n,
			Nodes:          p.NumNodes(),
			Links:          p.NumLinks(),
			Revised:        rev,
			Incremental:    inc,
			ThroughputDiff: rev.Throughput - inc.Throughput,
		}
		if rev.LPWallNs > 0 {
			cell.LPWallSpeedup = round2(float64(inc.LPWallNs) / float64(rev.LPWallNs))
		}
		if rev.PerPivotNs > 0 {
			cell.PerPivotSpeedup = round2(inc.PerPivotNs / rev.PerPivotNs)
		}
		rep.Sizes = append(rep.Sizes, cell)
		if !quiet {
			fmt.Fprintf(os.Stderr, "n=%d: revised %v vs incremental %v lp-wall (%.2fx), diff %.3e\n",
				n, time.Duration(rev.LPWallNs), time.Duration(inc.LPWallNs), cell.LPWallSpeedup, cell.ThroughputDiff)
		}
		if rel := math.Abs(cell.ThroughputDiff) / math.Max(inc.Throughput, 1e-12); rel > 1e-6 {
			return fmt.Errorf("n=%d: revised throughput %v vs incremental %v (rel %v > 1e-6)",
				n, rev.Throughput, inc.Throughput, rel)
		}
		if minSpeedup > 0 && n >= speedupFrom && cell.LPWallSpeedup < minSpeedup {
			return fmt.Errorf("n=%d: LP-wall speedup %.2fx below the %.2fx contract", n, cell.LPWallSpeedup, minSpeedup)
		}
	}

	var data []byte
	if pretty {
		data, err = json.MarshalIndent(rep, "", "  ")
	} else {
		data, err = json.Marshal(rep)
	}
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// solveOnce runs one steady solve and flattens the LP counters.
func solveOnce(p *platform.Platform, source int, opts *steady.Options) (solverReport, error) {
	t0 := time.Now()
	sol, err := steady.Solve(p, source, opts)
	if err != nil {
		return solverReport{}, err
	}
	total := time.Since(t0)
	r := solverReport{
		Throughput: sol.Throughput,
		Rounds:     sol.Rounds,
		Cuts:       sol.Cuts,
		Pivots:     sol.LPIterations,
		LPWallNs:   sol.LPWallNanos,
		TotalNs:    total.Nanoseconds(),
	}
	if sol.LPIterations > 0 {
		r.PerPivotNs = round2(float64(sol.LPWallNanos) / float64(sol.LPIterations))
	}
	return r, nil
}

// round2 keeps the derived ratios readable in the JSON artifact.
func round2(v float64) float64 { return math.Round(v*100) / 100 }
